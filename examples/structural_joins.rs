//! The structural-join primitives from the talk's reading list, raced
//! directly: Stack-Tree vs MPMGJN vs nested-loop vs navigation, and
//! TwigStack vs a binary join plan on a branching pattern.
//!
//! ```sh
//! cargo run --release --example structural_joins
//! ```

use std::sync::Arc;
use std::time::Instant;
use xqr_joins::{
    element_list, enumerate_matches, mpmgjn, nested_loop, stack_tree_desc, twig_stack, JoinKind,
    TwigPattern,
};
use xqr_store::Document;
use xqr_xdm::{NamePool, QName};
use xqr_xmlgen::{random_tree, RandomTreeConfig};

fn main() {
    let names = Arc::new(NamePool::new());
    let cfg = RandomTreeConfig {
        nodes: 50_000,
        p_ancestor: 0.08,
        p_descendant: 0.2,
        ..Default::default()
    };
    let xml = random_tree(&cfg);
    let doc = Document::parse(&xml, names.clone()).unwrap();
    println!("document: {} nodes ({} KiB)\n", doc.len(), xml.len() / 1024);

    let a = names.intern(&QName::local("a"));
    let d = names.intern(&QName::local("d"));
    let alist = element_list(&doc, a);
    let dlist = element_list(&doc, d);
    println!("//a//d: |A| = {}, |D| = {}", alist.len(), dlist.len());

    let t = Instant::now();
    let st = stack_tree_desc(&alist, &dlist, JoinKind::AncestorDescendant);
    println!(
        "  stack-tree-desc: {:>8} pairs in {:?}",
        st.len(),
        t.elapsed()
    );

    let t = Instant::now();
    let mj = mpmgjn(&alist, &dlist, JoinKind::AncestorDescendant);
    println!(
        "  mpmgjn:          {:>8} pairs in {:?}",
        mj.len(),
        t.elapsed()
    );

    if alist.len() * dlist.len() <= 20_000_000 {
        let t = Instant::now();
        let nl = nested_loop(&alist, &dlist, JoinKind::AncestorDescendant);
        println!(
            "  nested-loop:     {:>8} pairs in {:?}",
            nl.len(),
            t.elapsed()
        );
    }

    let twig_ad = TwigPattern::parse("//a//d", &names).unwrap();
    let t = Instant::now();
    let nav = enumerate_matches(&doc, &twig_ad);
    println!(
        "  navigation:      {:>8} pairs in {:?}",
        nav.len(),
        t.elapsed()
    );
    assert_eq!(st.len(), nav.len());

    println!("\n//a[t0]/d (branching twig):");
    let twig = TwigPattern::parse("//a[t0]/d", &names).unwrap();
    let lists: Vec<_> = twig
        .nodes
        .iter()
        .map(|n| element_list(&doc, n.name))
        .collect();
    let t = Instant::now();
    let (matches, stats) = twig_stack(&twig, &lists);
    println!(
        "  twigstack:   {:>6} matches, {:>6} path solutions, in {:?}",
        matches.len(),
        stats.path_solutions,
        t.elapsed()
    );
    let t = Instant::now();
    let ab = stack_tree_desc(&lists[0], &lists[1], JoinKind::ParentChild);
    let ad = stack_tree_desc(&lists[0], &lists[2], JoinKind::ParentChild);
    println!(
        "  binary plan: {:>6} + {:>6} intermediate pairs, in {:?}",
        ab.len(),
        ad.len(),
        t.elapsed()
    );
    println!(
        "\nTwigStack's intermediates ({}) vs the binary plan's ({}) — the\nholistic join's bounded-intermediate claim.",
        stats.path_solutions,
        ab.len() + ad.len()
    );
}
