//! The talk's "data integration" use case: "complex but smaller queries
//! (FLWORs, aggregates, constructors), large, persistent, external data
//! repositories" — a join across two documents with grouping-style
//! aggregation and order by.
//!
//! ```sh
//! cargo run --example data_integration
//! ```

use xqr::{DynamicContext, Engine};
use xqr_xmlgen::bibliography;

fn main() -> xqr::Result<()> {
    let engine = Engine::new();
    // Two "repositories": a bibliography and a publisher directory.
    engine.load_document("bib.xml", &bibliography(3, 60))?;
    engine.load_document(
        "publishers.xml",
        r#"<publishers>
            <publisher><name>Addison-Wesley</name><city>Boston</city></publisher>
            <publisher><name>Morgan Kaufmann</name><city>Burlington</city></publisher>
            <publisher><name>Springer Verlag</name><city>Berlin</city></publisher>
            <publisher><name>Kluwer</name><city>Dordrecht</city></publisher>
            <publisher><name>MIT Press</name><city>Cambridge</city></publisher>
        </publishers>"#,
    )?;

    // Per-publisher report: book count, price stats, joined city —
    // grouping expressed the XQuery 1.0 way (the talk lists `group by`
    // under "missing functionalities").
    let q = engine.compile(
        r#"
        for $p in doc("publishers.xml")//publisher
        let $books := doc("bib.xml")//book[publisher = $p/name]
        where exists($books)
        order by count($books) descending, $p/name
        return
          <report publisher="{$p/name}" city="{$p/city}">
            <books>{count($books)}</books>
            <avg-price>{round-half-to-even(avg($books/price), 2)}</avg-price>
            <newest>{max($books/@year)}</newest>
          </report>
        "#,
    )?;
    let result = q.execute(&engine, &DynamicContext::new())?;
    for line in result.string_values() {
        let _ = line;
    }
    // Pretty-print one report per line.
    let out = result
        .serialize_guarded()
        .unwrap()
        .replace("</report>", "</report>\n");
    println!("{out}");

    // A cross-document value join, the talk's join slide shape.
    let q2 = engine.compile(
        r#"
        for $b in doc("bib.xml")//book,
            $p in doc("publishers.xml")//publisher
        where $b/publisher = $p/name and $b/@year = 1967
        return concat(string($b/title), " — ", string($p/city))
        "#,
    )?;
    println!("1967 titles with cities:");
    for s in q2.execute(&engine, &DynamicContext::new())?.string_values() {
        println!("  {s}");
    }
    Ok(())
}
