//! End-to-end demo of resource governance: deadline, cancellation and
//! panic containment through the public API.

use std::time::{Duration, Instant};
use xqr::{DynamicContext, Engine, EngineOptions, Limits, QueryGuard, RuntimeOptions};

fn main() {
    // 1. Deadline: the acceptance query under a 100 ms budget.
    let engine = Engine::with_options(EngineOptions {
        runtime: RuntimeOptions {
            limits: Limits::unlimited().with_deadline(Duration::from_millis(100)),
            ..Default::default()
        },
        ..Default::default()
    });
    let t = Instant::now();
    let err = engine
        .query("for $x in 1 to 100000000 return <r/>")
        .unwrap_err();
    println!(
        "deadline: err:{} after {:?}",
        err.code.as_str(),
        t.elapsed()
    );

    // 2. Cancellation from another thread.
    let engine = Engine::new();
    let q = engine.compile("sum(1 to 10000000000)").unwrap();
    let guard = QueryGuard::new(Limits::unlimited());
    let handle = guard.cancel_handle();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(30));
        handle.cancel();
    });
    let err = q
        .execute_guarded(&engine, &DynamicContext::new(), guard)
        .unwrap_err();
    canceller.join().unwrap();
    println!("cancel:   err:{}", err.code.as_str());

    // 3. Panic containment: the process keeps going.
    let engine = Engine::with_options(EngineOptions {
        runtime: RuntimeOptions {
            debug_inject_panic: true,
            ..Default::default()
        },
        ..Default::default()
    });
    let err = engine.query("1").unwrap_err();
    println!("panic:    err:{} (process still alive)", err.code.as_str());
    println!("after:    {}", Engine::new().query("6 * 7").unwrap());
}
