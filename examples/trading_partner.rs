//! The talk's running customer example: transform an ebXML trading-
//! partner configuration ("a fraction of a real customer XQuery").
//!
//! Shows the optimizer's work: the triple equi-join in the where clause
//! is detected and hash-joined; compare the plans and timings with the
//! optimizer off.
//!
//! ```sh
//! cargo run --release --example trading_partner
//! ```

use std::time::Instant;
use xqr::{CompileOptions, DynamicContext, Engine, EngineOptions, RewriteConfig};
use xqr_xmlgen::trading_partners;

const QUERY: &str = r#"
declare variable $wlc := doc("ebsample.xml");
<result>{
  for $tp in $wlc/wlc/trading-partner
  return
    <trading-partner name="{$tp/@name}"
                     business-id="{$tp/party-identifier/@business-id}"
                     type="{$tp/@type}">
      {
        for $dc in $tp/delivery-channel
        for $de in $tp/document-exchange
        for $tr in $tp/transport
        where $dc/@document-exchange-name = $de/@name
          and $dc/@transport-name = $tr/@name
          and $de/@business-protocol-name = "ebXML"
        return
          <ebxml-binding name="{$dc/@name}">
            <transport protocol="{$tr/@protocol}" endpoint="{$tr/endpoint[1]/@uri}"/>
          </ebxml-binding>
      }
    </trading-partner>
}</result>
"#;

fn main() -> xqr::Result<()> {
    let xml = trading_partners(9, 100);
    println!(
        "input: {} KiB of generated ebXML configuration\n",
        xml.len() / 1024
    );

    let engine = Engine::new();
    engine.load_document("ebsample.xml", &xml)?;
    let q = engine.compile(QUERY)?;
    println!("optimized plan (note the hash-join):\n{}", q.explain());

    let t0 = Instant::now();
    let result = q.execute(&engine, &DynamicContext::new())?;
    let t_opt = t0.elapsed();
    let out = result.serialize_guarded().unwrap();

    let unopt = Engine::with_options(EngineOptions {
        compile: CompileOptions {
            rewrite: RewriteConfig::none(),
            ..Default::default()
        },
        runtime: Default::default(),
        ..Default::default()
    });
    unopt.load_document("ebsample.xml", &xml)?;
    let q2 = unopt.compile(QUERY)?;
    let t1 = Instant::now();
    let result2 = q2.execute(&unopt, &DynamicContext::new())?;
    let t_unopt = t1.elapsed();
    assert_eq!(out.len(), result2.serialize_guarded().unwrap().len());

    println!(
        "output: {} KiB, {} bindings",
        out.len() / 1024,
        out.matches("<ebxml-binding").count()
    );
    println!("optimized:   {:>8.2?}", t_opt);
    println!("unoptimized: {:>8.2?}", t_unopt);
    println!(
        "\nfirst partner:\n{}",
        &out[..out
            .find("</trading-partner>")
            .map(|i| i + 18)
            .unwrap_or(200)
            .min(out.len())]
    );
    Ok(())
}
