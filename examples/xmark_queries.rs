//! A suite of XMark-style benchmark queries (after Schmidt et al.'s
//! XMark, the standard XQuery benchmark contemporary with the talk) run
//! against the generated auction document — the talk's "large volumes of
//! centralized textual data" use case.
//!
//! ```sh
//! cargo run --release --example xmark_queries
//! ```

use std::time::Instant;
use xqr::{DynamicContext, Engine};
use xqr_xmlgen::{auction_site, XmarkConfig};

/// (id, description, query) — adapted to the generator's vocabulary.
pub const QUERIES: &[(&str, &str, &str)] = &[
    (
        "Q1",
        "name of the seller of the first open auction",
        r#"for $b in doc("auction.xml")/site/open_auctions/open_auction[1]
           for $p in doc("auction.xml")/site/people/person
           where $p/@id = $b/seller/@person
           return string($p/name)"#,
    ),
    (
        "Q2",
        "initial increases of all bidders",
        r#"for $b in doc("auction.xml")/site/open_auctions/open_auction
           return <increase>{string($b/bidder[1]/increase)}</increase>"#,
    ),
    (
        "Q4",
        "auctions where some bidder raised by more than 10",
        r#"count(for $b in doc("auction.xml")/site/open_auctions/open_auction
               where some $i in $b/bidder/increase satisfies number($i) > 10
               return $b)"#,
    ),
    (
        "Q5",
        "closed auctions above a price",
        r#"count(for $i in doc("auction.xml")/site/closed_auctions/closed_auction
               where $i/price >= 100
               return $i/price)"#,
    ),
    (
        "Q6",
        "items per region",
        r#"for $r in doc("auction.xml")/site/regions/* return count($r/item)"#,
    ),
    (
        "Q8",
        "big buyers: people joined to their closed auctions",
        r#"for $p in doc("auction.xml")/site/people/person
           let $a := for $t in doc("auction.xml")/site/closed_auctions/closed_auction
                     where $t/buyer/@person = $p/@id
                     return $t
           where count($a) ge 3
           order by count($a) descending, $p/@id
           return <buyer name="{$p/name}">{count($a)}</buyer>"#,
    ),
    (
        "Q8b",
        "Q8 rewritten so the group join applies (order-by outside)",
        r#"for $r in (for $p in doc("auction.xml")/site/people/person
                      let $a := for $t in doc("auction.xml")/site/closed_auctions/closed_auction
                                return if ($t/buyer/@person = $p/@id) then $t else ()
                      return if (count($a) ge 3)
                             then <buyer id="{$p/@id}" name="{$p/name}" n="{count($a)}"/>
                             else ())
           order by number($r/@n) descending, $r/@id
           return $r"#,
    ),
    (
        "Q11",
        "join people to open auctions by initial price affordability",
        r#"count(for $p in doc("auction.xml")/site/people/person[creditcard]
               for $o in doc("auction.xml")/site/open_auctions/open_auction
               where $o/seller/@person = $p/@id
               return $o)"#,
    ),
    (
        "Q13",
        "region item names with descriptions",
        r#"for $i in doc("auction.xml")/site/regions/europe/item
           return <item name="{$i/name}">{string($i/description)}</item>"#,
    ),
    (
        "Q17",
        "people without a registered address",
        r#"count(for $p in doc("auction.xml")/site/people/person
               where empty($p/address)
               return $p)"#,
    ),
    (
        "Q20",
        "grouping people by presence of a creditcard",
        r#"<result>
             <with>{count(doc("auction.xml")/site/people/person[creditcard])}</with>
             <without>{count(doc("auction.xml")/site/people/person[empty(creditcard)])}</without>
           </result>"#,
    ),
];

fn main() -> xqr::Result<()> {
    let xml = auction_site(&XmarkConfig::scaled(8_000));
    println!("auction document: {} KiB\n", xml.len() / 1024);
    let engine = Engine::new();
    engine.load_document("auction.xml", &xml)?;
    for (id, what, query) in QUERIES {
        let prepared = engine.compile(query)?;
        let t0 = Instant::now();
        let result = prepared.execute(&engine, &DynamicContext::new())?;
        let dt = t0.elapsed();
        let out = result.serialize_guarded().unwrap();
        let preview: String = out.chars().take(60).collect();
        println!(
            "{id:>4} {dt:>9.2?}  [{:>5} items]  {what}\n      {preview}",
            result.len()
        );
    }
    Ok(())
}
