//! Demo of the `xqr-service` layer: N client threads firing M queries
//! each at one shared service, with a plan cache, a byte-budgeted
//! document catalog backed by a durable segment store, and admission
//! control. The run ends with a simulated restart: a second service
//! incarnation opens the same directory and recovers the corpus from
//! checksummed mmap segments instead of re-parsing.
//!
//! Run with `cargo run --release --example service_demo`.

use std::sync::Arc;
use std::time::{Duration, Instant};
use xqr::xqr_service::{QueryService, ServiceConfig};
use xqr::{DynamicContext, ErrorCode, Limits};

const CLIENTS: usize = 8;
const QUERIES_PER_CLIENT: usize = 200;

fn main() {
    let dir = std::env::temp_dir().join(format!("xqr-service-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServiceConfig {
        plan_cache_capacity: 64,
        catalog_max_bytes: Some(4 << 20),
        max_concurrent: 4,
        max_queued: 512,
        per_query_limits: Limits::unlimited().with_deadline(Duration::from_secs(5)),
        persist_dir: Some(dir.clone()),
        ..Default::default()
    };
    let service = Arc::new(QueryService::open(config.clone()).expect("open segment store"));

    // A small catalog of named documents, queryable via doc("name").
    service
        .load_document(
            "bib.xml",
            "<bib>\
               <book year=\"1994\"><title>TCP/IP Illustrated</title><price>65</price></book>\
               <book year=\"2000\"><title>Data on the Web</title><price>39</price></book>\
               <book year=\"1999\"><title>Economics of Tech</title><price>129</price></book>\
             </bib>",
        )
        .unwrap();

    // The working set every client draws from: a handful of query texts,
    // so after the first round everything is a plan-cache hit.
    let queries = [
        r#"count(doc("bib.xml")//book)"#,
        r#"sum(for $p in doc("bib.xml")//price return xs:integer($p))"#,
        r#"for $b in doc("bib.xml")//book where xs:integer($b/price) < 100 return string($b/title)"#,
        r#"string(doc("bib.xml")//book[@year = "2000"]/title)"#,
    ];

    let t = Instant::now();
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let service = service.clone();
            std::thread::spawn(move || {
                let mut ok = 0u64;
                let mut shed = 0u64;
                for i in 0..QUERIES_PER_CLIENT {
                    let q = queries[(c + i) % queries.len()];
                    match service.submit(q, DynamicContext::new()) {
                        Ok(ticket) => {
                            ticket.wait().expect("query failed");
                            ok += 1;
                        }
                        // Under overload the service sheds work instead
                        // of queueing without bound; a real client would
                        // back off and retry.
                        Err(e) if e.code == ErrorCode::Overloaded => shed += 1,
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
                (ok, shed)
            })
        })
        .collect();

    let mut ok = 0;
    let mut shed = 0;
    for c in clients {
        let (o, s) = c.join().unwrap();
        ok += o;
        shed += s;
    }
    let elapsed = t.elapsed();

    println!(
        "{CLIENTS} clients x {QUERIES_PER_CLIENT} queries: {ok} served, {shed} shed in {elapsed:?} \
         ({:.0} queries/s)\n",
        ok as f64 / elapsed.as_secs_f64()
    );
    println!("{}", service.stats_text());

    // Simulated restart: drop the service, reopen the directory. The
    // catalog adopts the persisted corpus in O(manifest) time; the first
    // doc("bib.xml") touch mmaps and checksum-verifies the segment.
    drop(service);
    let service = QueryService::open(config).expect("reopen segment store");
    let answer = service
        .run(r#"count(doc("bib.xml")//book)"#)
        .expect("recovered query");
    let s = service.stats();
    println!(
        "\nafter restart: count(//book) = {answer}, segments recovered: {} \
         quarantined: {} cold-start: {:?}",
        s.segments_recovered, s.segments_quarantined, s.cold_start_load
    );
    let _ = std::fs::remove_dir_all(&dir);
}
