//! Offline drop-in subset of the `bytes` crate.
//!
//! Backs `Bytes` with an `Arc<Vec<u8>>` plus a cursor window, and
//! `BytesMut` with a plain `Vec<u8>`. Only the surface the tokenstream
//! wire codec uses is implemented: the `Buf`/`BufMut` read/write
//! primitives, `freeze`, `copy_to_bytes`, and the usual constructors.

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply clonable immutable byte buffer with an advancing read cursor.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: self.data.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

/// Growable byte buffer; `freeze` converts it into an immutable `Bytes`.
#[derive(Default, Debug, Clone)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte buffer.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn advance(&mut self, cnt: usize);
    fn chunk(&self) -> &[u8];

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        assert!(self.has_remaining(), "get_u8 on empty buffer");
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice overrun");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.start += cnt;
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Bytes {
    /// Split off the first `len` bytes as an owned `Bytes`, advancing self.
    pub fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.len(), "copy_to_bytes overrun");
        let out = self.slice(0..len);
        self.start += len;
        out
    }
}

/// Write cursor appending to a byte buffer.
pub trait BufMut {
    fn put_u8(&mut self, b: u8);
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, b: u8) {
        self.data.push(b);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut m = BytesMut::with_capacity(8);
        m.put_u8(1);
        m.put_slice(&[2, 3, 4]);
        let mut b = m.freeze();
        assert_eq!(b.len(), 4);
        assert_eq!(b.get_u8(), 1);
        let rest = b.copy_to_bytes(2);
        assert_eq!(&rest[..], &[2, 3]);
        assert_eq!(b.remaining(), 1);
        assert_eq!(b.get_u8(), 4);
        assert!(!b.has_remaining());
    }

    #[test]
    fn copy_to_slice_reads_prefix() {
        let mut b = Bytes::from_static(b"XQTSxy");
        let mut magic = [0u8; 4];
        b.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"XQTS");
        assert_eq!(b.remaining(), 2);
    }
}
