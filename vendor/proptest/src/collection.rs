//! `prop::collection` strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.end - self.size.start) as u64;
        let n = self.size.start + rng.below(span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
