//! Regex-subset string generation for `&str` strategies.
//!
//! Supported grammar (covers every pattern in this workspace's tests):
//!
//! ```text
//! pattern := element*
//! element := atom repetition?
//! atom    := '.'                      (any printable ASCII)
//!          | '[' class-item* ']'      (character class)
//!          | '\' char                 (escaped literal)
//!          | char                     (literal)
//! class-item := char '-' char         (range)
//!             | '\' char              (escaped literal)
//!             | char                  (literal; '-' literal at edges)
//! repetition := '{' n '}' | '{' m ',' n '}'
//! ```

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    /// Any printable ASCII character (0x20..=0x7E).
    Dot,
    /// Inclusive character ranges; single chars are (c, c).
    Class(Vec<(char, char)>),
    Lit(char),
}

#[derive(Debug, Clone)]
struct Element {
    atom: Atom,
    min: u32,
    max: u32,
}

fn parse(pattern: &str) -> Vec<Element> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Dot
            }
            '[' => {
                i += 1;
                let mut ranges = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let c = if chars[i] == '\\' {
                        i += 1;
                        let c = *chars.get(i).expect("dangling escape in class");
                        i += 1;
                        c
                    } else {
                        let c = chars[i];
                        i += 1;
                        c
                    };
                    // `a-z` range: only when '-' is between two members.
                    if i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']' {
                        i += 1; // '-'
                        let hi = if chars[i] == '\\' {
                            i += 1;
                            let hi = chars[i];
                            i += 1;
                            hi
                        } else {
                            let hi = chars[i];
                            i += 1;
                            hi
                        };
                        assert!(c <= hi, "inverted class range {c}-{hi}");
                        ranges.push((c, hi));
                    } else {
                        ranges.push((c, c));
                    }
                }
                assert!(
                    i < chars.len(),
                    "unterminated character class in {pattern:?}"
                );
                i += 1; // ']'
                Atom::Class(ranges)
            }
            '\\' => {
                i += 1;
                let c = *chars.get(i).expect("dangling escape");
                i += 1;
                Atom::Lit(c)
            }
            c => {
                i += 1;
                Atom::Lit(c)
            }
        };
        // Optional {n} / {m,n} repetition.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            i += 1;
            let mut first = String::new();
            while chars[i].is_ascii_digit() {
                first.push(chars[i]);
                i += 1;
            }
            let m: u32 = first.parse().expect("bad repetition count");
            let n = if chars[i] == ',' {
                i += 1;
                let mut second = String::new();
                while chars[i].is_ascii_digit() {
                    second.push(chars[i]);
                    i += 1;
                }
                second.parse().expect("bad repetition bound")
            } else {
                m
            };
            assert_eq!(chars[i], '}', "unterminated repetition in {pattern:?}");
            i += 1;
            (m, n)
        } else {
            (1, 1)
        };
        out.push(Element { atom, min, max });
    }
    out
}

fn gen_char(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Dot => (0x20 + rng.below(0x7F - 0x20) as u8) as char,
        Atom::Lit(c) => *c,
        Atom::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|(lo, hi)| (*hi as u64 - *lo as u64) + 1)
                .sum();
            let mut pick = rng.below(total);
            for (lo, hi) in ranges {
                let span = (*hi as u64 - *lo as u64) + 1;
                if pick < span {
                    return char::from_u32(*lo as u32 + pick as u32).expect("class range");
                }
                pick -= span;
            }
            unreachable!("pick within total")
        }
    }
}

pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let elements = parse(pattern);
    let mut out = String::new();
    for el in &elements {
        let count = if el.min == el.max {
            el.min
        } else {
            el.min + rng.below((el.max - el.min + 1) as u64) as u32
        };
        for _ in 0..count {
            out.push(gen_char(&el.atom, rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(42)
    }

    #[test]
    fn class_with_range_and_bound() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_matching("[a-z]{1,5}", &mut r);
            assert!((1..=5).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn dot_any_printable() {
        let mut r = rng();
        for _ in 0..50 {
            let s = generate_matching(".{0,100}", &mut r);
            assert!(s.len() <= 100);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn escapes_and_trailing_dash() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_matching("[a-z<>/=\"'& ;!\\[\\]-]{0,80}", &mut r);
            assert!(s.len() <= 80);
            for c in s.chars() {
                assert!(
                    c.is_ascii_lowercase() || "<>/=\"'& ;![]-".contains(c),
                    "unexpected char {c:?}"
                );
            }
        }
    }

    #[test]
    fn literal_runs() {
        let mut r = rng();
        assert_eq!(generate_matching("abc", &mut r), "abc");
    }
}
