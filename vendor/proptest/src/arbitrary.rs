//! `any::<T>()` strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct Any<T> {
    _marker: PhantomData<T>,
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite doubles across a wide magnitude range; no NaN/inf, which
        // matches how the workspace's tests use numeric inputs.
        let mantissa = rng.unit_f64() * 2.0 - 1.0;
        let exp = rng.below(61) as i32 - 30;
        mantissa * (2f64).powi(exp)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mostly ASCII with occasional BMP characters.
        if rng.below(4) == 0 {
            char::from_u32(0x00A1 + rng.below(0xFF) as u32).unwrap_or('x')
        } else {
            (0x20 + rng.below(0x5F) as u8) as char
        }
    }
}
