//! Case runner and config for the vendored proptest subset.

/// Deterministic PRNG handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = TestRng {
            state: seed ^ 0x9e3779b97f4a7c15,
        };
        let _ = rng.next_u64();
        rng
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; bound must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
    /// Abort after this many consecutive `prop_assume!` rejections.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

#[derive(Debug)]
pub enum TestCaseError {
    /// The case did not satisfy a `prop_assume!`; try another input.
    Reject,
    /// A `prop_assert!` failed.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// Run `case` until `config.cases` inputs pass (rejections don't count).
/// Panics on the first failed assertion, reporting the case number so a
/// failure is findable under the deterministic seeding.
pub fn run_cases<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut passed: u32 = 0;
    let mut rejected: u32 = 0;
    let mut attempt: u64 = 0;
    while passed < config.cases {
        // Derive each case's seed from the test name and attempt index so
        // every test walks its own reproducible sequence.
        let mut seed: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            seed = (seed ^ b as u64).wrapping_mul(0x100000001b3);
        }
        let mut rng = TestRng::from_seed(seed.wrapping_add(attempt.wrapping_mul(0x9e3779b9)));
        attempt += 1;
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "{name}: too many prop_assume! rejections \
                         ({rejected} rejects for {passed} passed cases)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: case {attempt} failed: {msg}");
            }
        }
    }
}
