//! Strategy trait and combinators for the vendored proptest subset.

use crate::test_runner::TestRng;
use std::sync::Arc;

/// A generator of values for property tests. Unlike upstream there is no
/// value tree: generation yields the value directly and nothing shrinks.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Arc::new(self),
        }
    }

    /// Recursive strategies: `f` receives a strategy for the inner level
    /// and returns the composite level. `depth` bounds nesting; the size
    /// hints are accepted for API compatibility but unused (no shrinking
    /// means no size accounting).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut level = base.clone();
        for _ in 0..depth {
            // Each level mixes the base back in so generated trees have
            // leaves at every depth, not only at the maximum.
            let composite = f(level).boxed();
            level = Union::new(vec![base.clone(), composite]).boxed();
        }
        level
    }
}

/// Clonable type-erased strategy (`Arc`-backed, like upstream).
pub struct BoxedStrategy<T> {
    inner: Arc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among alternatives (what `prop_oneof!` builds).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

// ---- ranges ---------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---- tuples ---------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                $(let $v = $s.generate(rng);)+
                ($($v,)+)
            }
        }
    };
}

impl_tuple_strategy!(A / a);
impl_tuple_strategy!(A / a, B / b);
impl_tuple_strategy!(A / a, B / b, C / c);
impl_tuple_strategy!(A / a, B / b, C / c, D / d);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);

// ---- string patterns ------------------------------------------------------

/// `&'static str` is a strategy that treats the string as a regex-subset
/// pattern (char classes, `.`, `{m,n}` repetition) and generates matching
/// strings — see the `string` module for the supported grammar.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1000 {
            let v = (10usize..200).generate(&mut rng);
            assert!((10..200).contains(&v));
            let n = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn union_uses_every_arm() {
        let u = Union::new(vec![
            Just(1u8).boxed(),
            Just(2u8).boxed(),
            Just(3u8).boxed(),
        ]);
        let mut rng = TestRng::from_seed(2);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn recursive_strategies_terminate() {
        let atom = (0u32..10).prop_map(|i| i.to_string());
        let strat = atom.prop_recursive(4, 40, 4, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| format!("({a} {b})"))
        });
        let mut rng = TestRng::from_seed(3);
        for _ in 0..200 {
            let s = strat.generate(&mut rng);
            assert!(!s.is_empty());
            // depth 4 with binary branching bounds the output size
            assert!(s.len() < 4096);
        }
    }
}
