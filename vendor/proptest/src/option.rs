//! `prop::option` strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

pub struct OptionStrategy<S> {
    inner: S,
}

pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        // Same bias as upstream's default: Some three times out of four.
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}
