//! Offline drop-in subset of the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the strategy-combinator surface its property tests use: `proptest!`,
//! the assertion/assumption macros, `Just`, ranges, tuples, string
//! patterns (a regex subset), `prop_oneof!`, `prop_map`,
//! `prop_recursive`, `prop::collection::vec` and `prop::option::of`.
//!
//! Differences from upstream, deliberately accepted:
//! - **No shrinking.** A failing case reports the generated inputs via
//!   the assertion message but is not minimized.
//! - **Fixed seeding.** Cases are generated from a deterministic
//!   per-case seed, so failures reproduce across runs.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Mirror of upstream's `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirror of upstream's `prop` module namespace.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            #[test]
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::run_cases(config, stringify!($name), |rng| {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), rng);
                    )+
                    let mut case = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    };
                    case()
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?}` != `{:?}`: {}",
                    left,
                    right,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                left, right
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}
