//! Offline drop-in subset of the `rand` crate.
//!
//! The workload generators (`xqr-xmlgen`) only need a seedable,
//! deterministic PRNG with `gen_range`, `gen_bool` and `gen::<f64>()`.
//! This stub backs `StdRng` with SplitMix64 — not cryptographic, but
//! statistically fine for generating test documents, and fully
//! deterministic for a given seed (which the proptest suites rely on to
//! cross-check independent implementations on the same tree).

pub mod rngs {
    /// Deterministic 64-bit PRNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        pub(crate) fn from_state(state: u64) -> Self {
            StdRng { state }
        }

        pub(crate) fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Mix the seed once so seeds 0,1,2… don't start in nearby states.
        let mut rng = rngs::StdRng::from_state(seed ^ 0x5851f42d4c957f2d);
        let _ = rng.next_u64();
        rng
    }
}

/// Types `Rng::gen_range` can sample uniformly from a `Range`.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_range(rng: &mut rngs::StdRng, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut rngs::StdRng, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                // Modulo bias is ≤ span/2^64 — irrelevant for workload gen.
                let v = (rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range(rng: &mut rngs::StdRng, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }
}

/// Types `Rng::gen` can produce from the standard distribution.
pub trait StandardSample {
    fn sample_standard(rng: &mut rngs::StdRng) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard(rng: &mut rngs::StdRng) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl StandardSample for u64 {
    fn sample_standard(rng: &mut rngs::StdRng) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn sample_standard(rng: &mut rngs::StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

pub trait Rng {
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T;
    fn gen_bool(&mut self, p: f64) -> bool;
    fn gen<T: StandardSample>(&mut self) -> T;
}

impl Rng for rngs::StdRng {
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p outside [0,1]");
        f64::sample_standard(self) < p
    }

    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..500);
            assert!((10..500).contains(&v));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let n = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
