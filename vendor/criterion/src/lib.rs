//! Offline drop-in subset of the `criterion` benchmark API.
//!
//! Implements the group/bench_function/bench_with_input surface the
//! workspace's benches use, with a simple measurement loop: warm up
//! briefly, then time batches until ~`sample_size` samples or a wall
//! budget is reached, and report median ns/iter. No plots, no statistics
//! machinery — enough to compare implementations and keep `cargo bench`
//! working without the network.

use std::fmt::Display;
use std::time::{Duration, Instant};

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 50,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            budget: self.sample_size,
        };
        f(&mut b);
        b.report(&self.name, &id.label);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            budget: self.sample_size,
        };
        f(&mut b, input);
        b.report(&self.name, &id.label);
        self
    }

    pub fn finish(&mut self) {}
}

pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

pub struct Bencher {
    samples: Vec<f64>,
    budget: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + batch sizing: aim for batches of at least ~1ms so
        // Instant overhead doesn't dominate sub-microsecond routines.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let per_batch = (Duration::from_millis(1).as_nanos() / once.as_nanos()).max(1) as usize;

        let wall_budget = Duration::from_millis(500);
        let bench_start = Instant::now();
        for _ in 0..self.budget {
            let t = Instant::now();
            for _ in 0..per_batch {
                black_box(f());
            }
            self.samples
                .push(t.elapsed().as_nanos() as f64 / per_batch as f64);
            if bench_start.elapsed() > wall_budget {
                break;
            }
        }
    }

    fn report(&self, group: &str, label: &str) {
        if self.samples.is_empty() {
            println!("{group}/{label}: no samples");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        println!(
            "{group}/{label}: median {:.1} ns/iter (min {:.1}, max {:.1}, {} samples)",
            median,
            min,
            max,
            sorted.len()
        );
    }
}

/// Identity function that defeats constant-propagation of benchmark
/// results, same contract as `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
