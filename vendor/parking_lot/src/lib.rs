//! Offline drop-in subset of the `parking_lot` API.
//!
//! The build environment has no network access, so the workspace vendors
//! the few upstream surfaces it uses as thin wrappers over `std::sync`.
//! Semantics match parking_lot where the engine relies on them: no lock
//! poisoning (a panicked holder does not wedge later accessors), and
//! guards deref to the protected value.

use std::fmt;
use std::ops::{Deref, DerefMut};

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => RwLockReadGuard { guard },
            Err(poisoned) => RwLockReadGuard {
                guard: poisoned.into_inner(),
            },
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => RwLockWriteGuard { guard },
            Err(poisoned) => RwLockWriteGuard {
                guard: poisoned.into_inner(),
            },
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    guard: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => MutexGuard { guard },
            Err(poisoned) => MutexGuard {
                guard: poisoned.into_inner(),
            },
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 41;
        assert_eq!(*l.read(), 42);
    }

    #[test]
    fn no_poisoning() {
        let l = std::sync::Arc::new(RwLock::new(0));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        assert_eq!(*l.read(), 0);
    }
}
