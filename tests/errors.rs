//! Error-code conformance: which W3C error code each failure mode
//! raises, both static (compile-time) and dynamic (run-time). The engine
//! keeps stable codes so embedders can dispatch on them.

use xqr::{DynamicContext, Engine, ErrorCode};

fn compile_err(query: &str) -> ErrorCode {
    let engine = Engine::new();
    engine
        .compile(query)
        .map(|_| ())
        .expect_err(&format!("{query:?} should fail to compile"))
        .code
}

fn run_err(query: &str) -> ErrorCode {
    let engine = Engine::new();
    engine
        .load_document("bib.xml", "<bib><book><price>10</price></book></bib>")
        .unwrap();
    let q = engine
        .compile(query)
        .unwrap_or_else(|e| panic!("{query:?} should compile, got {e}"));
    q.execute(&engine, &DynamicContext::new())
        .map(|_| ())
        .expect_err(&format!("{query:?} should fail at runtime"))
        .code
}

#[test]
fn static_errors() {
    // Syntax.
    assert_eq!(compile_err("1 +"), ErrorCode::Syntax);
    assert_eq!(compile_err("for $x in"), ErrorCode::Syntax);
    assert_eq!(compile_err("<a><b></a>"), ErrorCode::Syntax);
    assert_eq!(compile_err("let $x = 1 return $x"), ErrorCode::Syntax);
    // Undefined names.
    assert_eq!(compile_err("$nope"), ErrorCode::UndefinedName);
    assert_eq!(
        compile_err("let $x := 1 return $y"),
        ErrorCode::UndefinedName
    );
    // Variable scope ends at the binding expression.
    assert_eq!(
        compile_err("(let $x := 1 return $x) + $x"),
        ErrorCode::UndefinedName
    );
    // Unknown functions and wrong arity.
    assert_eq!(compile_err("frobnicate(1)"), ErrorCode::UndefinedFunction);
    assert_eq!(compile_err("count()"), ErrorCode::UndefinedFunction);
    assert_eq!(compile_err("count((1,2), 3)"), ErrorCode::UndefinedFunction);
    // Unbound namespace prefixes.
    assert_eq!(compile_err("$x/zz:a"), ErrorCode::UnboundPrefix);
    // Unknown types.
    assert_eq!(compile_err("1 instance of xs:frob"), ErrorCode::Syntax);
    // Duplicate attributes in a direct constructor.
    assert_eq!(
        compile_err(r#"<a x="1" x="2"/>"#),
        ErrorCode::DuplicateAttribute
    );
}

#[test]
fn dynamic_type_errors() {
    assert_eq!(run_err(r#""a" + 1"#), ErrorCode::Type);
    assert_eq!(run_err("true() + 1"), ErrorCode::Type);
    assert_eq!(run_err(r#""a" eq 1"#), ErrorCode::Type);
    assert_eq!(run_err("(1, 2) eq 1"), ErrorCode::Type);
    assert_eq!(run_err("1 treat as xs:string"), ErrorCode::Type);
    assert_eq!(
        run_err(r#""x" cast as xs:integer"#),
        ErrorCode::InvalidValue
    );
    assert_eq!(run_err("() cast as xs:integer"), ErrorCode::Type);
    // `<a>42</a> eq 42` — the talk's slide says error.
    assert_eq!(run_err("<a>42</a> eq 42"), ErrorCode::Type);
    // But general comparison coerces: type error only on bad lexicals.
    assert_eq!(run_err("<a>baz</a> = 42"), ErrorCode::InvalidValue);
}

#[test]
fn arithmetic_errors() {
    assert_eq!(run_err("1 idiv 0"), ErrorCode::DivisionByZero);
    assert_eq!(run_err("1 mod 0"), ErrorCode::DivisionByZero);
    assert_eq!(run_err("1.5 div 0"), ErrorCode::DivisionByZero); // exact decimal
    assert_eq!(run_err("9223372036854775807 + 1"), ErrorCode::Overflow);
    // IEEE doubles divide by zero without error.
    let engine = Engine::new();
    assert_eq!(engine.query("string(1e0 div 0)").unwrap(), "INF");
}

#[test]
fn cardinality_errors() {
    assert_eq!(run_err("exactly-one(())"), ErrorCode::Cardinality);
    assert_eq!(run_err("exactly-one((1, 2))"), ErrorCode::Cardinality);
    assert_eq!(run_err("zero-or-one((1, 2))"), ErrorCode::Cardinality);
    assert_eq!(run_err("one-or-more(())"), ErrorCode::Cardinality);
}

#[test]
fn context_errors() {
    // No context item at the top level.
    assert_eq!(run_err("./a"), ErrorCode::MissingContext);
    assert_eq!(run_err("position()"), ErrorCode::MissingContext);
    // Unbound external variable.
    assert_eq!(
        run_err("declare variable $v external; $v"),
        ErrorCode::MissingContext
    );
    // Missing document.
    assert_eq!(
        run_err(r#"doc("no-such.xml")"#),
        ErrorCode::DocumentNotFound
    );
}

#[test]
fn path_errors() {
    assert_eq!(run_err("(1)/a"), ErrorCode::PathOnAtomic);
    // Mixed nodes and atomics from one path.
    assert_eq!(
        run_err("let $d := <r><a>1</a><a>2</a></r> return $d/a/(if (. = 1) then . else 9)"),
        ErrorCode::MixedPathResult
    );
}

#[test]
fn constructor_errors() {
    assert_eq!(
        run_err("element a { (attribute x { 1 }, attribute x { 2 }) }"),
        ErrorCode::DuplicateAttribute
    );
    assert_eq!(
        run_err(r#"element a { ("text", attribute x { 1 }) }"#),
        ErrorCode::InvalidConstructor
    );
    assert_eq!(
        run_err(r#"comment { "a--b" }"#),
        ErrorCode::InvalidConstructor
    );
    assert_eq!(
        run_err(r#"processing-instruction xml { "x" }"#),
        ErrorCode::InvalidConstructor
    );
}

#[test]
fn user_errors_and_limits() {
    assert_eq!(run_err("error()"), ErrorCode::UserError);
    assert_eq!(run_err(r#"error((), "boom")"#), ErrorCode::UserError);
    assert_eq!(
        run_err("declare function local:f($n) { local:f($n) }; local:f(1)"),
        ErrorCode::Limit
    );
    assert_eq!(
        run_err(r#"tokenize("x", "[bad")"#),
        ErrorCode::InvalidPattern
    );
}

#[test]
fn governance_error_codes_are_stable() {
    // Embedders dispatch on these; they must never change.
    assert_eq!(ErrorCode::Internal.as_str(), "XQRL0000");
    assert_eq!(ErrorCode::Limit.as_str(), "XQRL0001");
    assert_eq!(ErrorCode::Timeout.as_str(), "XQRL0002");
    assert_eq!(ErrorCode::Cancelled.as_str(), "XQRL0003");
    assert_eq!(ErrorCode::Overloaded.as_str(), "XQRL0004");
    assert_eq!(ErrorCode::Unavailable.as_str(), "XQRL0005");
    assert_eq!(ErrorCode::CorruptSegment.as_str(), "XQRL0006");

    use std::time::Duration;
    use xqr::{EngineOptions, Limits, RuntimeOptions};
    // Each governed failure mode raises its own code.
    let budgeted = Engine::with_options(EngineOptions {
        runtime: RuntimeOptions {
            limits: Limits::unlimited().with_max_items(100),
            ..Default::default()
        },
        ..Default::default()
    });
    let q = budgeted
        .compile("for $x in 1 to 100000000 return $x")
        .unwrap();
    let err = q.execute(&budgeted, &DynamicContext::new()).unwrap_err();
    assert_eq!(err.code, ErrorCode::Limit);

    let deadlined = Engine::with_options(EngineOptions {
        runtime: RuntimeOptions {
            limits: Limits::unlimited().with_deadline(Duration::from_millis(1)),
            ..Default::default()
        },
        ..Default::default()
    });
    let q = deadlined
        .compile("for $x in 1 to 100000000 return $x")
        .unwrap();
    let err = q.execute(&deadlined, &DynamicContext::new()).unwrap_err();
    assert_eq!(err.code, ErrorCode::Timeout);
}

#[test]
fn error_code_table_has_not_drifted() {
    // The full stable error-code table, pinned row by row: embedders
    // dispatch on the code strings and the retryable classification, so
    // changing any existing row is an API break. Adding a code means
    // consciously appending a row here (and to `ErrorCode::ALL`).
    #[rustfmt::skip]
    const TABLE: &[(ErrorCode, &str, bool, &str)] = &[
        (ErrorCode::Syntax,               "XPST0003", false, "grammar / syntax error in the query text"),
        (ErrorCode::UndefinedName,        "XPST0008", false, "undefined variable or other name"),
        (ErrorCode::UndefinedFunction,    "XPST0017", false, "unknown function or wrong arity"),
        (ErrorCode::Type,                 "XPTY0004", false, "static or dynamic type mismatch"),
        (ErrorCode::MixedPathResult,      "XPTY0018", false, "path step mixes nodes and atomic values"),
        (ErrorCode::PathOnAtomic,         "XPTY0019", false, "path step applied to an atomic value"),
        (ErrorCode::AxisOnAtomic,         "XPTY0020", false, "axis step with a non-node context item"),
        (ErrorCode::InvalidValue,         "FORG0001", false, "invalid lexical value for a cast/constructor"),
        (ErrorCode::InvalidArgument,      "FORG0006", false, "invalid argument type"),
        (ErrorCode::DivisionByZero,       "FOAR0001", false, "division by zero"),
        (ErrorCode::Overflow,             "FOAR0002", false, "numeric overflow/underflow"),
        (ErrorCode::InvalidQName,         "FOCA0002", false, "invalid QName lexical form"),
        (ErrorCode::Cardinality,          "FORG0004", false, "occurrence constraint violated"),
        (ErrorCode::DocumentNotFound,     "FODC0002", false, "document/collection not available"),
        (ErrorCode::UnboundPrefix,        "FONS0004", false, "no namespace found for prefix"),
        (ErrorCode::UnsupportedCollation, "FOCH0002", false, "unsupported collation"),
        (ErrorCode::InvalidPattern,       "FORX0002", false, "invalid regular-expression pattern"),
        (ErrorCode::DuplicateAttribute,   "XQDY0025", false, "duplicate attribute name in constructor"),
        (ErrorCode::InvalidConstructor,   "XQDY0026", false, "constructor content error"),
        (ErrorCode::MissingContext,       "XPDY0002", false, "dynamic context component absent"),
        (ErrorCode::UserError,            "FOER0000", false, "fn:error() or user-raised error"),
        (ErrorCode::StaticProlog,         "XQST0034", false, "static error in prolog declarations"),
        (ErrorCode::Limit,                "XQRL0001", false, "engine resource budget exceeded"),
        (ErrorCode::Internal,             "XQRL0000", false, "internal invariant violation (engine bug)"),
        (ErrorCode::Timeout,              "XQRL0002", true,  "wall-clock deadline exceeded"),
        (ErrorCode::Cancelled,            "XQRL0003", false, "execution cancelled by the embedder"),
        (ErrorCode::Overloaded,           "XQRL0004", true,  "admission control shed the query"),
        (ErrorCode::Unavailable,          "XQRL0005", true,  "transient subsystem fault"),
        (ErrorCode::CorruptSegment,       "XQRL0006", false, "persisted segment failed integrity verification"),
    ];
    assert_eq!(
        TABLE.len(),
        ErrorCode::ALL.len(),
        "a code was added or removed without updating the pinned table"
    );
    for (i, (code, s, retryable, description)) in TABLE.iter().enumerate() {
        assert_eq!(
            *code,
            ErrorCode::ALL[i],
            "ErrorCode::ALL order drifted at index {i}"
        );
        assert_eq!(code.as_str(), *s, "{code:?}: code string drifted");
        assert_eq!(
            code.is_retryable(),
            *retryable,
            "{code:?}: retryable classification drifted"
        );
        assert_eq!(
            code.description(),
            *description,
            "{code:?}: description drifted"
        );
    }
}

#[test]
fn function_signature_enforcement() {
    // Declared parameter types are checked at call time.
    assert_eq!(
        run_err("declare function local:f($x as xs:integer) { $x }; local:f(\"s\")"),
        ErrorCode::Type
    );
    // Declared return types too.
    assert_eq!(
        run_err("declare function local:f() as xs:integer { \"s\" }; local:f()"),
        ErrorCode::Type
    );
}

#[test]
fn laziness_of_errors() {
    // Errors in unevaluated branches never fire.
    let engine = Engine::new();
    assert_eq!(
        engine.query("if (true()) then 1 else 1 idiv 0").unwrap(),
        "1"
    );
    assert_eq!(engine.query("(1 to 10)[1] , ()").unwrap(), "1");
    // The talk: false and error → false is permitted.
    assert_eq!(engine.query("1 eq 2 and 1 idiv 0 eq 1").unwrap(), "false");
    // Early-exit operators skip erroring tails.
    assert_eq!(
        engine
            .query("some $x in (1, 1 idiv 0) satisfies $x eq 1")
            .unwrap(),
        "true"
    );
}

#[test]
fn let_declared_types_enforced() {
    assert_eq!(
        run_err("let $x as xs:integer := \"s\" return $x"),
        ErrorCode::Type
    );
    let engine = Engine::new();
    assert_eq!(
        engine
            .query("let $x as xs:integer := 5 return $x + 1")
            .unwrap(),
        "6"
    );
    assert_eq!(
        engine
            .query("let $x as xs:string* := (\"a\", \"b\") return string-join($x, \"\")")
            .unwrap(),
        "ab"
    );
}

#[test]
fn function_bodies_have_no_focus() {
    // `.` and position() inside a function body are context errors even
    // when the caller has a focus.
    assert_eq!(
        run_err(
            "declare function local:f() { position() };
             (1, 2, 3)[local:f()]"
        ),
        ErrorCode::MissingContext
    );
    assert_eq!(
        run_err(
            "declare function local:ctx() { . };
             doc(\"bib.xml\")//book[local:ctx()]"
        ),
        ErrorCode::MissingContext
    );
}
