//! Morsel-count determinism: the parallel twig executor must be
//! invisible in the output. For a fixed document and query set, every
//! morsel count — serial, small, odd, and `num_cpus` — must produce
//! byte-identical serialized results and identical semantic counter
//! totals. Only the execution-shape gauges (`morsels_run`,
//! `parallel_joins`) may differ.

use xqr::xqr_runtime::ParallelConfig;
use xqr::xqr_xmlgen::{random_tree, RandomTreeConfig};
use xqr::{context_with_doc, Engine, EngineOptions};

/// A deterministic medium-size document with enough repeated tags that
/// every twig below has hundreds of root-list entries to split.
fn test_doc() -> String {
    random_tree(&RandomTreeConfig {
        seed: 0xDE7E_2171,
        nodes: 900,
        max_depth: 9,
        alphabet: 3,
        p_ancestor: 0.2,
        p_descendant: 0.25,
        p_text: 0.2,
        p_attribute: 0.15,
    })
}

const QUERIES: &[&str] = &[
    "//t0",
    "//t0//t1",
    "//t0/t1",
    "//t0[t1]//t2",
    "//t0[t1][t2]",
    "count(//t0//t1)",
    "string((//t2)[1])",
];

/// Run one query under a forced morsel count, returning the serialized
/// bytes plus the counter totals that must not depend on the split.
fn run(xml: &str, query: &str, morsels: usize) -> (String, u64, u64, u64, u64) {
    let options = EngineOptions::default().with_parallel(ParallelConfig::forced(morsels));
    let engine = Engine::with_options(options);
    let ctx = context_with_doc(&engine, "det.xml", xml).unwrap();
    let prepared = engine.compile(query).unwrap();
    let result = prepared.execute(&engine, &ctx).unwrap();
    let out = result.serialize_guarded().unwrap();
    (
        out,
        result.counters.items_produced.get(),
        result.counters.index_hits.get(),
        result.counters.index_misses.get(),
        result.counters.parallel_joins.get(),
    )
}

#[test]
fn every_morsel_count_serializes_identically() {
    let xml = test_doc();
    let ncpu = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let counts = [1usize, 2, 3, 7, ncpu];

    for query in QUERIES {
        let (base_out, base_items, base_hits, base_misses, _) = run(&xml, query, 1);
        for &m in &counts[1..] {
            let (out, items, hits, misses, _) = run(&xml, query, m);
            assert_eq!(
                out, base_out,
                "morsels={m} diverged from serial on {query:?}"
            );
            assert_eq!(
                (items, hits, misses),
                (base_items, base_hits, base_misses),
                "semantic counters drifted under morsels={m} on {query:?}"
            );
        }
    }
}

#[test]
fn forced_splits_actually_engage_the_parallel_path() {
    // Determinism above would hold vacuously if the executor never
    // split; pin that a branching twig (linear chains are answered
    // straight from path-filtered postings, no join) runs parallel when
    // forced to 3 morsels.
    let xml = test_doc();
    let (_, _, hits, _, parallel_joins) = run(&xml, "//t0[t1]//t2", 3);
    assert!(hits > 0, "query must be answered by the index path");
    assert!(
        parallel_joins > 0,
        "forced(3) on an indexed twig must split into morsels"
    );
    // And the serial forcing must *not* count a parallel join.
    let (_, _, _, _, serial_joins) = run(&xml, "//t0[t1]//t2", 1);
    assert_eq!(serial_joins, 0, "morsels=1 is the serial path");
}
