//! Resource governance: every budget in [`xqr::Limits`] is enforced with
//! a stable error code, cancellation works from another thread, and
//! panics on the evaluation thread are contained at the engine boundary.

use std::time::{Duration, Instant};
use xqr::{DynamicContext, Engine, EngineOptions, ErrorCode, Limits, QueryGuard, RuntimeOptions};

fn engine_with_limits(limits: Limits) -> Engine {
    Engine::with_options(EngineOptions {
        runtime: RuntimeOptions {
            limits,
            ..Default::default()
        },
        ..Default::default()
    })
}

fn run_err(engine: &Engine, query: &str) -> xqr::Error {
    let q = engine.compile(query).unwrap();
    q.execute(engine, &DynamicContext::new())
        .map(|_| ())
        .expect_err(&format!("{query:?} should trip a limit"))
}

#[test]
fn deadline_stops_unbounded_query_mid_stream() {
    // The acceptance query: effectively infinite work, bounded only by
    // the wall-clock deadline.
    let engine = engine_with_limits(Limits::unlimited().with_deadline(Duration::from_millis(100)));
    let start = Instant::now();
    let err = run_err(&engine, "for $x in 1 to 100000000 return <r/>");
    let elapsed = start.elapsed();
    assert_eq!(err.code, ErrorCode::Timeout);
    assert_eq!(err.code.as_str(), "XQRL0002");
    // Generous bound: the deadline is 100ms and the stride-amortized
    // clock check observes it promptly.
    assert!(elapsed < Duration::from_secs(10), "took {elapsed:?}");
}

#[test]
fn cancellation_from_a_second_thread() {
    let engine = Engine::new();
    let q = engine
        .compile("count(for $x in 1 to 100000000 return $x)")
        .unwrap();
    let guard = QueryGuard::new(Limits::unlimited());
    let handle = guard.cancel_handle();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(20));
        handle.cancel();
    });
    let err = q
        .execute_guarded(&engine, &DynamicContext::new(), guard)
        .unwrap_err();
    canceller.join().unwrap();
    assert_eq!(err.code, ErrorCode::Cancelled);
    assert_eq!(err.code.as_str(), "XQRL0003");
}

#[test]
fn cancelling_before_execution_trips_immediately() {
    let engine = Engine::new();
    let q = engine
        .compile("for $x in 1 to 100000000 return $x")
        .unwrap();
    let guard = QueryGuard::new(Limits::unlimited());
    guard.cancel_handle().cancel();
    let err = q
        .execute_guarded(&engine, &DynamicContext::new(), guard)
        .unwrap_err();
    assert_eq!(err.code, ErrorCode::Cancelled);
}

#[test]
fn materialization_budget_bounds_item_count() {
    let engine = engine_with_limits(Limits::unlimited().with_max_items(10_000));
    let err = run_err(&engine, "for $x in 1 to 100000000 return $x");
    assert_eq!(err.code, ErrorCode::Limit);
    assert_eq!(err.code.as_str(), "XQRL0001");
    // Well under the budget: fine.
    let small = engine.query("count(for $x in 1 to 100 return $x)").unwrap();
    assert_eq!(small, "100");
}

#[test]
fn output_byte_cap_applies_to_serialization() {
    let engine = engine_with_limits(Limits::unlimited().with_max_output_bytes(64));
    let q = engine
        .compile("for $x in 1 to 40 return <r>{$x}</r>")
        .unwrap();
    let result = q.execute(&engine, &DynamicContext::new()).unwrap();
    // The items materialized fine; the cap trips at serialization time.
    let err = result.serialize_guarded().unwrap_err();
    assert_eq!(err.code, ErrorCode::Limit);
    // Under the cap, serialization succeeds.
    let q = engine.compile("<ok/>").unwrap();
    let result = q.execute(&engine, &DynamicContext::new()).unwrap();
    assert_eq!(result.serialize_guarded().unwrap(), "<ok/>");
}

#[test]
fn parser_depth_limit_prevents_stack_overflow() {
    // 100k nested opens: the reader's depth cap must reject this long
    // before any stack is at risk.
    let deep = "<a>".repeat(100_000);
    let engine = Engine::new();
    let err = engine.load_document("deep.xml", &deep).unwrap_err();
    assert_eq!(err.code, ErrorCode::Limit);
}

#[test]
fn guarded_depth_limit_is_configurable_below_hard_cap() {
    let engine = engine_with_limits(Limits::unlimited().with_max_xml_depth(50));
    // fn:doc parses through the execution's guard.
    let xml = format!("{}{}", "<a>".repeat(100), "</a>".repeat(100));
    let q = engine.compile("doc(\"deep.xml\")").unwrap();
    let mut ctx = DynamicContext::new();
    ctx.add_document("deep.xml", xml);
    let err = q.execute(&engine, &ctx).unwrap_err();
    assert_eq!(err.code, ErrorCode::Limit);
}

#[test]
fn document_size_cap_applies_to_fn_doc() {
    let engine = engine_with_limits(Limits::unlimited().with_max_document_bytes(128));
    let big = format!("<r>{}</r>", "x".repeat(1000));
    let q = engine.compile("doc(\"big.xml\")").unwrap();
    let mut ctx = DynamicContext::new();
    ctx.add_document("big.xml", big);
    let err = q.execute(&engine, &ctx).unwrap_err();
    assert_eq!(err.code, ErrorCode::Limit);
}

#[test]
fn deadline_applies_to_streaming_execution() {
    let engine = engine_with_limits(Limits::unlimited().with_deadline(Duration::from_millis(0)));
    let q = engine.compile("/list/item").unwrap();
    let mut xml = String::from("<list>");
    for i in 0..5000 {
        xml.push_str(&format!("<item>{i}</item>"));
    }
    xml.push_str("</list>");
    std::thread::sleep(Duration::from_millis(5));
    let err = q.execute_streaming(&engine, &xml, |_| {}).unwrap_err();
    assert_eq!(err.code, ErrorCode::Timeout);
}

#[test]
fn token_budget_applies_to_streaming_execution() {
    let engine = engine_with_limits(Limits::unlimited().with_max_tokens(100));
    let q = engine.compile("/list/item").unwrap();
    let mut xml = String::from("<list>");
    for i in 0..5000 {
        xml.push_str(&format!("<item>{i}</item>"));
    }
    xml.push_str("</list>");
    let err = q.execute_streaming(&engine, &xml, |_| {}).unwrap_err();
    assert_eq!(err.code, ErrorCode::Limit);
}

#[test]
fn panic_on_eval_thread_is_contained() {
    let engine = Engine::with_options(EngineOptions {
        runtime: RuntimeOptions {
            debug_inject_panic: true,
            ..Default::default()
        },
        ..Default::default()
    });
    let err = engine.query("1 + 1").unwrap_err();
    assert_eq!(err.code, ErrorCode::Internal);
    assert_eq!(err.code.as_str(), "XQRL0000");
    // The process is intact: a fresh engine still evaluates.
    assert_eq!(Engine::new().query("6 * 7").unwrap(), "42");
}

#[test]
fn budget_gauges_surface_in_counters() {
    let engine = engine_with_limits(Limits::unlimited().with_max_items(1_000_000));
    let q = engine
        .compile("count(for $x in 1 to 500 return $x)")
        .unwrap();
    let r = q.execute(&engine, &DynamicContext::new()).unwrap();
    assert!(
        r.counters.budget_items.get() >= 500,
        "items gauge: {}",
        r.counters.budget_items.get()
    );
}

#[test]
fn unlimited_defaults_change_nothing() {
    // Default engines have no budgets: a moderately large query runs.
    let engine = Engine::new();
    assert_eq!(engine.query("count(1 to 200000)").unwrap(), "200000");
    assert!(RuntimeOptions::default().limits.is_unlimited());
}
