//! Cross-crate pipeline tests: behaviours that only show up when the
//! whole stack runs together.

use xqr::{bind, DynamicContext, Engine, EngineOptions, Item};
use xqr_xmlgen::{auction_site, bibliography, trading_partners, XmarkConfig};

#[test]
fn generated_workloads_parse_and_query() {
    let engine = Engine::new();
    let xmark = auction_site(&XmarkConfig::scaled(400));
    engine.load_document("auction.xml", &xmark).unwrap();
    let people: usize = engine
        .query(r#"count(doc("auction.xml")/site/people/person)"#)
        .unwrap()
        .parse()
        .unwrap();
    assert!(people > 50);
    // Every person has a name.
    assert_eq!(
        engine
            .query(r#"count(doc("auction.xml")//person[empty(name)])"#)
            .unwrap(),
        "0"
    );
    // Bidder increases are numeric and non-negative.
    assert_eq!(
        engine
            .query(r#"every $i in doc("auction.xml")//bidder/increase satisfies number($i) ge 0"#)
            .unwrap(),
        "true"
    );
}

#[test]
fn xmark_join_query() {
    // Join closed auctions to buyers — the XMark Q8/Q9 shape.
    let engine = Engine::new();
    engine
        .load_document("a.xml", &auction_site(&XmarkConfig::scaled(300)))
        .unwrap();
    let q = engine
        .compile(
            r#"
            let $d := doc("a.xml")
            for $p in $d/site/people/person
            let $bought := $d/site/closed_auctions/closed_auction[buyer/@person = $p/@id]
            where count($bought) ge 2
            order by count($bought) descending, $p/@id
            return <big-buyer id="{$p/@id}" n="{count($bought)}"/>
            "#,
        )
        .unwrap();
    let r = q.execute(&engine, &DynamicContext::new()).unwrap();
    // Deterministic workload → deterministic result; sanity: descending.
    let counts: Vec<i64> = r
        .items
        .iter()
        .filter_map(|i| i.as_node())
        .map(|n| {
            let doc = r.store.doc_of(n);
            let attr = doc.attribute(n.node, &xqr::QName::local("n")).unwrap();
            doc.value(attr).unwrap().parse().unwrap()
        })
        .collect();
    assert!(counts.windows(2).all(|w| w[0] >= w[1]));
    assert!(counts.iter().all(|&c| c >= 2));
}

#[test]
fn bibliography_report_roundtrips_through_reparse() {
    // Query output is well-formed XML that can be re-loaded and queried.
    let engine = Engine::new();
    engine
        .load_document("bib.xml", &bibliography(7, 40))
        .unwrap();
    let report = engine
        .query(
            r#"<report>{
                for $b in doc("bib.xml")//book
                where $b/price > 100
                return <expensive year="{$b/@year}">{string($b/title)}</expensive>
            }</report>"#,
        )
        .unwrap();
    let engine2 = Engine::new();
    let n = engine2
        .query_xml(&report, "count(/report/expensive)")
        .unwrap();
    let m = engine
        .query(r#"count(doc("bib.xml")//book[price > 100])"#)
        .unwrap();
    assert_eq!(n, m);
}

#[test]
fn trading_partner_doc_queryable_by_customer_shapes() {
    let engine = Engine::new();
    engine
        .load_document("eb.xml", &trading_partners(4, 25))
        .unwrap();
    // The dc/de/tr names triple-join completely: every delivery channel
    // resolves to exactly one document exchange and transport.
    assert_eq!(
        engine
            .query(
                r#"every $dc in doc("eb.xml")//delivery-channel satisfies
                   count(doc("eb.xml")//document-exchange[@name = $dc/@document-exchange-name]) eq 1"#
            )
            .unwrap(),
        "true"
    );
}

#[test]
fn external_variables_flow_through_engine() {
    let engine = Engine::new();
    let q = engine
        .compile(
            "declare variable $xs external;
             declare variable $k as xs:integer external;
             for $x in $xs where $x ge $k return $x * 10",
        )
        .unwrap();
    let mut ctx = DynamicContext::new();
    bind(
        &mut ctx,
        "xs",
        vec![Item::integer(1), Item::integer(5), Item::integer(9)],
    );
    bind(&mut ctx, "k", vec![Item::integer(5)]);
    assert_eq!(
        q.execute(&engine, &ctx)
            .unwrap()
            .serialize_guarded()
            .unwrap(),
        "50 90"
    );
}

#[test]
fn unoptimized_engine_runs_everything_the_optimized_does() {
    let queries = [
        "count(doc(\"g.xml\")//person)",
        "for $p in doc(\"g.xml\")//person[address] return string($p/name)",
        "<x>{sum(doc(\"g.xml\")//increase)}</x>",
    ];
    let xml = auction_site(&XmarkConfig::scaled(200));
    let run = |opts: EngineOptions| -> Vec<String> {
        let engine = Engine::with_options(opts);
        engine.load_document("g.xml", &xml).unwrap();
        queries.iter().map(|q| engine.query(q).unwrap()).collect()
    };
    assert_eq!(
        run(EngineOptions::default()),
        run(EngineOptions::unoptimized())
    );
}

#[test]
fn constructed_documents_live_exactly_as_long_as_their_result() {
    let engine = Engine::new();
    engine.load_document("b.xml", &bibliography(1, 5)).unwrap();
    let before = engine.store().doc_count();
    engine.query(r#"count(doc("b.xml")//book)"#).unwrap();
    assert_eq!(
        engine.store().doc_count(),
        before,
        "pure query adds no documents"
    );
    // Constructors allocate fresh documents in the shared store; the
    // result owns them, and dropping it frees them again — a long-lived
    // engine (the query service) must not accumulate result garbage.
    let prepared = engine.compile("<a><b/></a>").unwrap();
    let result = prepared.execute(&engine, &DynamicContext::new()).unwrap();
    assert!(
        engine.store().doc_count() > before,
        "construction adds documents while the result is alive"
    );
    assert_eq!(result.serialize_guarded().unwrap(), "<a><b/></a>");
    drop(result);
    assert_eq!(
        engine.store().doc_count(),
        before,
        "dropping the result frees its constructed documents"
    );
}

#[test]
fn error_positions_point_into_the_query() {
    let engine = Engine::new();
    let err = engine.compile("1 +\n+ $undefined").map(|_| ()).unwrap_err();
    assert!(err.position.is_some());
    let err = engine
        .compile("for $x in (1,2) return $y")
        .map(|_| ())
        .unwrap_err();
    assert_eq!(err.code, xqr::ErrorCode::UndefinedName);
}

#[test]
fn explain_mentions_the_right_operators() {
    let engine = Engine::new();
    engine.load_document("b.xml", &bibliography(1, 5)).unwrap();
    let q = engine
        .compile(
            "for $a in doc(\"b.xml\")//book
             return for $b in doc(\"b.xml\")//book
                    return if ($a/publisher = $b/publisher) then 1 else ()",
        )
        .unwrap();
    let plan = q.explain();
    assert!(plan.contains("hash-join"), "{plan}");
    let q2 = engine.compile("(doc(\"b.xml\")//book)[2]").unwrap();
    assert!(q2.explain().contains("skip-enabled"));
}

#[test]
fn big_document_count_is_stable() {
    // A moderately large end-to-end run as a smoke test for the store.
    let xml = auction_site(&XmarkConfig::scaled(5_000));
    let engine = Engine::new();
    let out = engine.query_xml(&xml, "count(//*)").unwrap();
    let n: usize = out.parse().unwrap();
    assert!(n > 10_000, "{n}");
    // Name index agrees with navigation.
    let via_index = engine.query_xml(&xml, "count(//person)").unwrap();
    let via_nav = engine.query_xml(&xml, "count(/site/people/*)").unwrap();
    assert_eq!(via_index, via_nav);
}

#[test]
fn pretty_serialization() {
    let engine = Engine::new();
    let q = engine.compile("<a><b><c/></b><d>t</d></a>").unwrap();
    let r = q.execute(&engine, &DynamicContext::new()).unwrap();
    assert_eq!(
        r.serialize_pretty().unwrap(),
        "<a>\n  <b>\n    <c/>\n  </b>\n  <d>t</d>\n</a>"
    );
    // Mixed atomic + node results.
    let q = engine.compile("(1, 2, <x/>)").unwrap();
    let r = q.execute(&engine, &DynamicContext::new()).unwrap();
    assert_eq!(r.serialize_pretty().unwrap(), "1 2\n<x/>");
}

#[test]
fn group_join_preserves_results_and_accelerates_q8() {
    // XMark Q8 on a small document: optimized (group join) and
    // unoptimized must agree exactly.
    let xml = auction_site(&XmarkConfig::scaled(400));
    let q = r#"
        for $p in doc("a.xml")/site/people/person
        let $a := for $t in doc("a.xml")/site/closed_auctions/closed_auction
                  where $t/buyer/@person = $p/@id
                  return $t
        where count($a) ge 2
        order by count($a) descending, $p/@id
        return <buyer id="{$p/@id}" n="{count($a)}"/>
    "#;
    let run = |opts: EngineOptions| {
        let engine = Engine::with_options(opts);
        engine.load_document("a.xml", &xml).unwrap();
        let prepared = engine.compile(q).unwrap();
        let plan = prepared.explain();
        let r = prepared.execute(&engine, &DynamicContext::new()).unwrap();
        (r.serialize_guarded().unwrap(), plan)
    };
    let (opt, plan) = run(EngineOptions::default());
    let (unopt, _) = run(EngineOptions::unoptimized());
    assert_eq!(opt, unopt);
    // Note: the order-by keeps this query in the tupled FLWOR form,
    // where group-join detection does not apply; the plain-FLWOR variant
    // exercises it below.
    let _ = plan;
    let q2 = r#"
        count(for $p in doc("a.xml")/site/people/person
              let $a := for $t in doc("a.xml")/site/closed_auctions/closed_auction
                        where $t/buyer/@person = $p/@id
                        return $t
              return count($a))
    "#;
    let engine = Engine::new();
    engine.load_document("a.xml", &xml).unwrap();
    let prepared = engine.compile(q2).unwrap();
    assert!(
        prepared.explain().contains("hash-group-join"),
        "{}",
        prepared.explain()
    );
    let opt2 = prepared
        .execute(&engine, &DynamicContext::new())
        .unwrap()
        .serialize_guarded()
        .unwrap();
    let engine2 = Engine::with_options(EngineOptions::unoptimized());
    engine2.load_document("a.xml", &xml).unwrap();
    let unopt2 = engine2.query(q2).unwrap();
    assert_eq!(opt2, unopt2);
}

#[test]
fn q8_and_q8b_formulations_agree() {
    // The quadratic (order-by-tupled) and group-joined formulations of
    // XMark Q8 must produce the same buyers and counts.
    let xml = auction_site(&XmarkConfig::scaled(600));
    let engine = Engine::new();
    engine.load_document("a.xml", &xml).unwrap();
    let q8 = engine
        .query(
            r#"for $p in doc("a.xml")/site/people/person
               let $a := for $t in doc("a.xml")/site/closed_auctions/closed_auction
                         where $t/buyer/@person = $p/@id
                         return $t
               where count($a) ge 2
               order by count($a) descending, $p/@id
               return <b id="{$p/@id}" n="{count($a)}"/>"#,
        )
        .unwrap();
    let q8b = engine
        .query(
            r#"for $r in (for $p in doc("a.xml")/site/people/person
                          let $a := for $t in doc("a.xml")/site/closed_auctions/closed_auction
                                    return if ($t/buyer/@person = $p/@id) then $t else ()
                          return if (count($a) ge 2)
                                 then <b id="{$p/@id}" n="{count($a)}"/>
                                 else ())
               order by number($r/@n) descending, $r/@id
               return $r"#,
        )
        .unwrap();
    assert_eq!(q8, q8b);
    assert!(q8.contains("<b id="));
}

#[test]
fn context_with_doc_helper() {
    let engine = Engine::new();
    let ctx = xqr::context_with_doc(&engine, "inv.xml", "<inv><item/><item/></inv>").unwrap();
    // Context item is bound to the document…
    let q = engine.compile("count(.//item)").unwrap();
    assert_eq!(
        q.execute(&engine, &ctx)
            .unwrap()
            .serialize_guarded()
            .unwrap(),
        "2"
    );
    // …and the document is also reachable via fn:doc.
    let q2 = engine.compile(r#"count(doc("inv.xml")//item)"#).unwrap();
    assert_eq!(
        q2.execute(&engine, &ctx)
            .unwrap()
            .serialize_guarded()
            .unwrap(),
        "2"
    );
}

#[test]
fn streaming_count_agrees_with_materialized() {
    let engine = Engine::new();
    let xml = auction_site(&XmarkConfig::scaled(500));
    // Child-only pattern: exact agreement guaranteed.
    let q = engine.compile("count(/site/people/person)").unwrap();
    assert!(q.is_streamable_count());
    let (n, stats) = q.execute_streaming_count(&engine, &xml).unwrap();
    let materialized = engine
        .query_xml(&xml, "count(/site/people/person)")
        .unwrap();
    assert_eq!(n.to_string(), materialized);
    assert!(
        stats.tokens_skipped > 0,
        "match subtrees should be skipped: {stats:?}"
    );
    // Non-count queries refuse.
    let q2 = engine.compile("/site/people/person").unwrap();
    assert!(!q2.is_streamable_count());
    assert!(q2.execute_streaming_count(&engine, &xml).is_err());
}
