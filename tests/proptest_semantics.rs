//! Property tests on semantics: the optimizer must preserve results, the
//! join algorithms must agree with the navigational oracle, and the
//! streaming matcher must agree with materialized evaluation — all over
//! randomized documents.

use proptest::prelude::*;
use std::sync::Arc;
use xqr::xqr_joins::{
    element_list, enumerate_matches, matches_of_node, mpmgjn, nested_loop, normalize, path_stack,
    stack_tree_anc, stack_tree_desc, twig_stack, JoinKind, TwigPattern,
};
use xqr::{
    CompileOptions, Document, DynamicContext, Engine, EngineOptions, Limits, QueryGuard,
    RewriteConfig, RuntimeOptions,
};
use xqr_xdm::NamePool;
use xqr_xmlgen::{random_tree, RandomTreeConfig};

fn arb_tree() -> impl Strategy<Value = String> {
    (any::<u64>(), 20usize..300, 2usize..8).prop_map(|(seed, nodes, depth)| {
        random_tree(&RandomTreeConfig {
            seed,
            nodes,
            max_depth: depth,
            alphabet: 3,
            p_ancestor: 0.2,
            p_descendant: 0.3,
            p_text: 0.2,
            ..Default::default()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn structural_joins_agree_with_oracle(xml in arb_tree(), parent_child in any::<bool>()) {
        let names = Arc::new(NamePool::new());
        let doc = Document::parse(&xml, names.clone()).unwrap();
        let a = names.intern(&xqr_xdm::QName::local("a"));
        let d = names.intern(&xqr_xdm::QName::local("d"));
        let alist = element_list(&doc, a);
        let dlist = element_list(&doc, d);
        let kind = if parent_child { JoinKind::ParentChild } else { JoinKind::AncestorDescendant };
        let want = normalize(nested_loop(&alist, &dlist, kind));
        prop_assert_eq!(&want, &normalize(stack_tree_desc(&alist, &dlist, kind)));
        prop_assert_eq!(&want, &normalize(stack_tree_anc(&alist, &dlist, kind)));
        prop_assert_eq!(&want, &normalize(mpmgjn(&alist, &dlist, kind)));
    }

    #[test]
    fn pathstack_agrees_with_navigation(xml in arb_tree(), pattern in prop_oneof![
        Just("//a//d"), Just("//a/d"), Just("/root//a/d"), Just("//a//t0//d"), Just("//t0/a//d")
    ]) {
        let names = Arc::new(NamePool::new());
        let doc = Document::parse(&xml, names.clone()).unwrap();
        let twig = TwigPattern::parse(pattern, &names).unwrap();
        let lists: Vec<_> = twig.nodes.iter().map(|n| element_list(&doc, n.name)).collect();
        let got = path_stack(&twig, &lists);
        let mut want = enumerate_matches(&doc, &twig);
        want.sort();
        want.dedup();
        prop_assert_eq!(got, want, "pattern {} on {}", pattern, xml);
    }

    #[test]
    fn twigstack_agrees_with_navigation(xml in arb_tree(), pattern in prop_oneof![
        Just("//a[t0]/d"), Just("//a[d]//t0"), Just("//a[t1][t0]/d"), Just("//a[//d]/t0")
    ]) {
        let names = Arc::new(NamePool::new());
        let doc = Document::parse(&xml, names.clone()).unwrap();
        let twig = TwigPattern::parse(pattern, &names).unwrap();
        let lists: Vec<_> = twig.nodes.iter().map(|n| element_list(&doc, n.name)).collect();
        let (got, _) = twig_stack(&twig, &lists);
        let mut want = enumerate_matches(&doc, &twig);
        want.sort();
        want.dedup();
        prop_assert_eq!(got, want, "pattern {} on {}", pattern, xml);
    }

    #[test]
    fn twig_output_node_matches_engine(xml in arb_tree()) {
        // //a//d via the joins crate vs the engine's path evaluation.
        let names = Arc::new(NamePool::new());
        let doc = Document::parse(&xml, names.clone()).unwrap();
        let twig = TwigPattern::parse("//a//d", &names).unwrap();
        let nodes = matches_of_node(&doc, &twig, 1);
        let engine = Engine::new();
        let out = engine.query_xml(&xml, "count(//a//d)").unwrap();
        prop_assert_eq!(out, nodes.len().to_string());
    }

    #[test]
    fn optimizer_preserves_query_results(xml in arb_tree(), qidx in 0usize..10) {
        let queries = [
            "count(//a)",
            "count(//a//d)",
            "for $x in //a return count($x/d)",
            "(//d)[2]",
            "string((//a)[1])",
            "for $x in //a where exists($x/t0) return 1",
            "sum(for $x in //* return 1)",
            "every $x in //a satisfies count($x/ancestor::*) ge 1",
            "<n c=\"{count(//d)}\"/>",
            "for $x in //a, $y in //d where count($x) = count($y) return 1",
        ];
        let q = queries[qidx];
        let run = |rewrite: RewriteConfig| -> String {
            let engine = Engine::with_options(EngineOptions {
                compile: CompileOptions { rewrite, ..Default::default() },
                ..Default::default()
            });
            engine.query_xml(&xml, q).unwrap()
        };
        prop_assert_eq!(run(RewriteConfig::all()), run(RewriteConfig::none()), "query {}", q);
    }

    #[test]
    fn streaming_matches_materialized_exact(xml in arb_tree(), pattern in prop_oneof![
        Just("/root/a"), Just("/root/a/d"), Just("/root/t0/a")
    ]) {
        // Child-only patterns: exact agreement.
        let engine = Engine::new();
        let q = engine.compile(pattern).unwrap();
        prop_assume!(q.is_streamable());
        prop_assert!(q.streaming_is_exact());
        let mut streamed = String::new();
        q.execute_streaming(&engine, &xml, |m| streamed.push_str(m)).unwrap();
        let materialized = engine.query_xml(&xml, pattern).unwrap();
        prop_assert_eq!(streamed, materialized, "pattern {}", pattern);
    }

    #[test]
    fn streaming_outermost_semantics(xml in arb_tree(), tag in prop_oneof![
        Just("a"), Just("d")
    ]) {
        // Descendant patterns emit outermost matches: exactly the nodes
        // with no same-pattern ancestor.
        let engine = Engine::new();
        let q = engine.compile(&format!("//{tag}")).unwrap();
        prop_assert!(q.is_streamable());
        prop_assert!(!q.streaming_is_exact());
        let mut count = 0u64;
        q.execute_streaming(&engine, &xml, |_| count += 1).unwrap();
        let outermost = engine
            .query_xml(&xml, &format!("count(//{tag}[empty(ancestor::{tag})])"))
            .unwrap();
        prop_assert_eq!(count.to_string(), outermost, "tag {}", tag);
    }

    #[test]
    fn ddo_is_idempotent_through_the_engine(xml in arb_tree()) {
        // Applying a path twice through unions cannot change the set.
        let engine = Engine::new();
        let once = engine.query_xml(&xml, "count(//a)").unwrap();
        let twice = engine.query_xml(&xml, "count(//a | //a)").unwrap();
        prop_assert_eq!(once, twice);
    }
}

/// Grammar-template generator for *closed* queries (also used by the
/// parser's printer proptest; duplicated here to fuzz full evaluation).
fn arb_closed_query() -> impl Strategy<Value = String> {
    let atom = prop_oneof![
        (0i64..100).prop_map(|i| i.to_string()),
        (0u32..50, 1u32..50).prop_map(|(a, b)| format!("{a}.{b}")),
        "[a-z]{1,5}".prop_map(|s| format!("\"{s}\"")),
        Just("()".to_string()),
        Just("(1, 2, 3)".to_string()),
    ];
    atom.prop_recursive(4, 40, 4, |inner| {
        prop_oneof![
            (
                inner.clone(),
                inner.clone(),
                prop_oneof![Just("+"), Just("-"), Just("*"), Just("idiv"), Just("mod")]
            )
                .prop_map(|(a, b, op)| format!("({a} {op} {b})")),
            (
                inner.clone(),
                inner.clone(),
                prop_oneof![
                    Just("eq"),
                    Just("="),
                    Just("!="),
                    Just("le"),
                    Just("and"),
                    Just("or")
                ]
            )
                .prop_map(|(a, b, op)| format!("({a} {op} {b})")),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, t, e)| format!("(if ({c}) then {t} else {e})")),
            ("[a-z]{1,3}", inner.clone(), inner.clone())
                .prop_map(|(v, src, body)| format!("(for ${v} in {src} return ({body}, ${v}))")),
            ("[a-z]{1,3}", inner.clone(), inner.clone())
                .prop_map(|(v, val, body)| format!("(let ${v} := {val} return (${v}, {body}))")),
            inner.clone().prop_map(|a| format!("count(({a}))")),
            inner.clone().prop_map(|a| format!("reverse(({a}))")),
            inner.clone().prop_map(|a| format!("exists(({a}))")),
            (inner.clone(), 1usize..4).prop_map(|(a, k)| format!("(({a}))[{k}]")),
            ("[a-z]{1,4}", inner.clone()).prop_map(|(t, c)| format!("string(<{t}>{{{c}}}</{t}>)")),
            inner
                .clone()
                .prop_map(|a| format!("(some $q in ({a}) satisfies $q = 1)")),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| format!("concat(string(({a})[1]), string(({b})[1]))")),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn optimizer_never_changes_successful_results(q in arb_closed_query()) {
        let run = |rewrite: RewriteConfig| {
            let engine = Engine::with_options(EngineOptions {
                compile: CompileOptions { rewrite, ..Default::default() },
                ..Default::default()
            });
            engine.query(&q)
        };
        let unopt = run(RewriteConfig::none());
        let opt = run(RewriteConfig::all());
        match (unopt, opt) {
            // If the naive evaluation succeeds, the optimized one must
            // succeed with the same value.
            (Ok(u), Ok(o)) => prop_assert_eq!(u, o, "query: {}", q),
            (Ok(u), Err(e)) => prop_assert!(false, "optimizer introduced error {} for {} (was {:?})", e, q, u),
            // The rewrite contract allows the optimizer to *avoid*
            // errors (lazy two-value logic), not to introduce them.
            (Err(_), _) => {}
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn guarded_execution_never_panics_and_respects_budgets(q in arb_closed_query()) {
        run_guarded_case(&q)?;
    }

    #[test]
    fn guarded_path_queries_over_documents_never_panic(xml in arb_tree(), qidx in 0usize..6) {
        // Same property over documents: budgeted path evaluation either
        // succeeds or returns a coded error.
        let queries = [
            "count(//a)",
            "//a//d",
            "for $x in //* return <r>{string($x)}</r>",
            "(//d)[1]",
            "string-join(for $x in //a return string($x), \",\")",
            "for $x in //a, $y in //d return 1",
        ];
        let limits = Limits::unlimited()
            .with_max_items(20_000)
            .with_max_output_bytes(1 << 18)
            .with_deadline(std::time::Duration::from_secs(5));
        let engine = Engine::with_options(EngineOptions {
            runtime: RuntimeOptions { limits, ..Default::default() },
            ..Default::default()
        });
        match engine.query_xml(&xml, queries[qidx]) {
            Ok(_) => {}
            Err(e) => prop_assert!(
                !e.code.as_str().is_empty(),
                "uncoded error for {} on {}", queries[qidx], xml
            ),
        }
    }
}

/// Resource governance property: under a small budget, any generated
/// query either succeeds or fails with a stable coded error — never a
/// panic (the engine boundary contains those as `err:XQRL0000`) — and
/// the recorded consumption never runs away past the caps.
fn run_guarded_case(q: &str) -> std::result::Result<(), TestCaseError> {
    const MAX_ITEMS: u64 = 50_000;
    let limits = Limits::unlimited()
        .with_max_items(MAX_ITEMS)
        .with_max_output_bytes(1 << 20)
        .with_deadline(std::time::Duration::from_secs(5));
    let engine = Engine::with_options(EngineOptions {
        runtime: RuntimeOptions {
            limits,
            ..Default::default()
        },
        ..Default::default()
    });
    let prepared = match engine.compile(q) {
        Ok(p) => p,
        Err(_) => return Ok(()), // statically invalid — fine
    };
    let guard = QueryGuard::new(limits);
    match prepared.execute_guarded(&engine, &DynamicContext::new(), guard.clone()) {
        Ok(r) => {
            let _ = r.serialize_guarded();
        }
        Err(e) => prop_assert!(!e.code.as_str().is_empty(), "uncoded error for {}", q),
    }
    // Items are charged one at a time, so consumption stops within one
    // charge of the cap.
    let u = guard.usage();
    prop_assert!(
        u.items <= MAX_ITEMS + 1,
        "items gauge ran away: {} for {}",
        u.items,
        q
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn decorrelated_flwor_agrees_with_naive(xml in arb_tree(), ge in 0i64..4) {
        // The Q8 shape with order-by: decorrelation must not change
        // results (order included).
        let q = format!(
            r#"for $p in //a
               let $m := for $t in //d where string($t) = string($p/t0[1]) return $t
               where count($m) ge {ge}
               order by count($m) descending
               return count($m)"#
        );
        let run = |rewrite: RewriteConfig| {
            let engine = Engine::with_options(EngineOptions {
                compile: CompileOptions { rewrite, ..Default::default() },
                ..Default::default()
            });
            engine.query_xml(&xml, &q).unwrap()
        };
        prop_assert_eq!(run(RewriteConfig::all()), run(RewriteConfig::none()));
    }
}
