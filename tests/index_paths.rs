//! Index-backed access paths, end to end: eligible queries compile to
//! an `index-scan` (visible in `explain`), answer from the structural
//! index when the document is indexed, fall back to navigation when it
//! is not — and all three agree byte-for-byte.

use xqr::{context_with_doc, Engine, EngineOptions};

const BIB: &str = r#"<bib><book year="1994"><title>TCP/IP Illustrated</title><author><last>Stevens</last><first>W.</first></author><price>65.95</price></book><book><title>No Authors Here</title><price>9.95</price></book><book year="2000"><title>Data on the Web</title><author><last>Abiteboul</last><first>Serge</first></author><author><last>Buneman</last><first>Peter</first></author><price>39.95</price></book></bib>"#;

/// Queries whose trunk (or whole body) is index-eligible.
const ELIGIBLE: &[&str] = &[
    "//book",
    "/bib/book/title",
    "//book//last",
    "//book[author]/title",
    "//book[author/last]/title",
    "//book[author][price]/title",
    "//book/@year",
    "//book[@year]/title",
    "count(//book[author])",
    r#"doc("bib.xml")//book[author]/title"#,
];

/// Control group: shapes access-path selection must leave alone —
/// positional and value predicates, wildcards, reverse axes.
const INELIGIBLE: &[&str] = &["//book[1]", "//book[price > 50]/title", "//*[author]"];

#[test]
fn eligible_queries_show_index_scan_in_explain() {
    let engine = Engine::new();
    for q in ELIGIBLE {
        let text = engine.compile(q).unwrap().explain();
        assert!(
            text.contains("index-scan"),
            "{q} should be index-backed:\n{text}"
        );
        assert!(
            text.contains("fallback: navigation"),
            "{q} explain should show the fallback:\n{text}"
        );
    }
    for q in INELIGIBLE {
        let text = engine.compile(q).unwrap().explain();
        assert!(!text.contains("index-scan"), "{q} must navigate:\n{text}");
    }
    // An ineligible step (reverse axis) doesn't poison the whole plan:
    // the eligible `//book` prefix is still planted as an index-scan.
    let text = engine.compile("//book/author/..").unwrap().explain();
    assert!(text.contains("index-scan //book"), "{text}");
}

/// The acceptance criterion: a conformance-style query demonstrably
/// switches to an index-backed twig join and returns byte-identical
/// results.
#[test]
fn indexed_navigation_and_unoptimized_agree_byte_for_byte() {
    for q in ELIGIBLE {
        // Indexed: default engine, load_document attaches an index.
        let indexed = Engine::new();
        let ctx = context_with_doc(&indexed, "bib.xml", BIB).unwrap();
        let plan = indexed.compile(q).unwrap();
        let result = plan.execute(&indexed, &ctx).unwrap();
        assert!(
            result.counters.index_hits.get() >= 1,
            "{q} should be answered from the index"
        );
        assert_eq!(result.counters.index_misses.get(), 0, "{q}");
        let from_index = result.serialize_guarded().unwrap();

        // Fallback: same plan shape, but the document carries no index,
        // so the IndexScan misses and navigates.
        let unindexed = Engine::with_options(EngineOptions {
            index_documents: false,
            ..Default::default()
        });
        let ctx = context_with_doc(&unindexed, "bib.xml", BIB).unwrap();
        let plan = unindexed.compile(q).unwrap();
        let result = plan.execute(&unindexed, &ctx).unwrap();
        assert!(
            result.counters.index_misses.get() >= 1,
            "{q} should fall back"
        );
        let from_fallback = result.serialize_guarded().unwrap();

        // Reference: no access paths, no rewrites, no indexes.
        let reference = Engine::with_options(EngineOptions::unoptimized());
        let ctx = context_with_doc(&reference, "bib.xml", BIB).unwrap();
        let from_navigation = reference
            .compile(q)
            .unwrap()
            .execute(&reference, &ctx)
            .unwrap()
            .serialize_guarded()
            .unwrap();

        assert_eq!(from_index, from_navigation, "{q}");
        assert_eq!(from_fallback, from_navigation, "{q}");
    }
}

/// A twig query specifically: the branching `[author]` predicate runs
/// through the holistic twig join, not navigation.
#[test]
fn twig_query_switches_to_index_backed_join() {
    let engine = Engine::new();
    let ctx = context_with_doc(&engine, "bib.xml", BIB).unwrap();
    let plan = engine.compile("//book[author]/title").unwrap();
    assert!(plan.explain().contains("index-scan //book[author]/title"));
    let result = plan.execute(&engine, &ctx).unwrap();
    assert_eq!(result.counters.index_hits.get(), 1);
    assert_eq!(
        result.serialize_guarded().unwrap(),
        "<title>TCP/IP Illustrated</title><title>Data on the Web</title>"
    );
}

/// Transient `query_xml` inputs are never indexed: the plan still runs
/// (via fallback) and agrees.
#[test]
fn transient_documents_fall_back_to_navigation() {
    let engine = Engine::new();
    let out = engine
        .query_xml(BIB, "count(//book[author]/title)")
        .unwrap();
    assert_eq!(out, "2");
}
