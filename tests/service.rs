//! Integration tests for the `xqr-service` subsystem: plan cache,
//! document catalog eviction, admission control, and stats consistency
//! under concurrency — the acceptance criteria of the service PR.

use std::sync::mpsc;
use std::time::Duration;
use xqr::xqr_service::{QueryService, ServiceConfig};
use xqr::{DynamicContext, Engine, ErrorCode, Limits};

#[test]
fn repeated_queries_hit_the_plan_cache_with_identical_results() {
    let service = QueryService::new(ServiceConfig::default());
    service
        .load_document(
            "bib.xml",
            "<bib><book><price>7</price></book><book><price>35</price></book></bib>",
        )
        .unwrap();
    let q = r#"sum(for $p in doc("bib.xml")//price return xs:integer($p))"#;

    // Uncached reference: a plain engine compiling from scratch.
    let engine = Engine::new();
    engine
        .load_document(
            "bib.xml",
            "<bib><book><price>7</price></book><book><price>35</price></book></bib>",
        )
        .unwrap();
    let uncached = engine.query(q).unwrap();

    let first = service.run(q).unwrap();
    let mut results = vec![first];
    for _ in 0..9 {
        results.push(service.run(q).unwrap());
    }
    for r in &results {
        assert_eq!(r, &uncached, "cached and uncached plans must agree");
    }

    let s = service.stats();
    assert!(
        s.plan_hit_rate() > 0.0,
        "repeated queries must hit the cache: {s}"
    );
    assert_eq!(s.plan_misses, 1, "one compile for ten executions: {s}");
    assert_eq!(s.plan_hits, 9, "{s}");
    assert_eq!(s.served, 10, "{s}");
}

#[test]
fn catalog_evicts_under_its_byte_budget() {
    // Size one representative document, then budget for two of them.
    let doc = |i: usize| format!("<d><pad>{}</pad><n>{i}</n></d>", "x".repeat(50_000));
    let one_doc = {
        let probe = Engine::new();
        let id = probe.store().load_xml(&doc(0), None).unwrap();
        probe.store().document(id).memory_bytes() as u64
    };
    let service = QueryService::new(ServiceConfig {
        catalog_max_bytes: Some(one_doc * 2 + one_doc / 2),
        ..Default::default()
    });
    for i in 0..10 {
        service
            .load_document(&format!("doc{i}.xml"), &doc(i))
            .unwrap();
    }
    let s = service.stats();
    assert!(
        s.catalog_docs <= 2,
        "byte budget admits at most two docs: {s}"
    );
    assert!(s.catalog_bytes <= one_doc * 2 + one_doc / 2, "{s}");
    assert_eq!(s.catalog_evictions, 8, "{s}");
    // The newest documents survived; the store itself shrank too.
    assert_eq!(service.run(r#"string(doc("doc9.xml")/d/n)"#).unwrap(), "9");
    let err = service.run(r#"doc("doc0.xml")"#).unwrap_err();
    assert_eq!(err.code, ErrorCode::DocumentNotFound);
    assert_eq!(
        service.engine().store().doc_count(),
        s.catalog_docs as usize
    );
}

#[test]
fn saturating_the_pool_rejects_with_xqrl0004() {
    let service = QueryService::new(ServiceConfig {
        max_concurrent: 1,
        max_queued: 1,
        ..Default::default()
    });
    // Occupy the single worker with a long query, cancellable so the
    // test always terminates.
    let blocker = service
        .submit("sum(1 to 10000000000)", DynamicContext::new())
        .unwrap();
    let cancel = blocker.cancel_handle();
    // Wait until it is actually running, not just queued.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while service.stats().active == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "blocker never started"
        );
        std::thread::yield_now();
    }
    // Fill the one queue slot.
    let queued = service.submit("1 + 1", DynamicContext::new()).unwrap();
    // The next submission is shed immediately with the stable code.
    let err = service.submit("2 + 2", DynamicContext::new()).unwrap_err();
    assert_eq!(err.code, ErrorCode::Overloaded);
    assert_eq!(err.code.as_str(), "XQRL0004");
    assert_eq!(service.stats().rejected, 1);

    // Release the worker: the queued query still completes.
    cancel.cancel();
    assert_eq!(blocker.wait().unwrap_err().code, ErrorCode::Cancelled);
    assert_eq!(queued.wait().unwrap(), "2");
    // Capacity returned: new work is admitted again.
    assert_eq!(service.run("3 + 3").unwrap(), "6");
}

#[test]
fn eight_threads_share_one_cached_plan() {
    let service = std::sync::Arc::new(QueryService::new(ServiceConfig {
        max_concurrent: 8,
        max_queued: 256,
        ..Default::default()
    }));
    service
        .load_document(
            "bib.xml",
            "<bib><book><price>7</price></book><book><price>35</price></book></bib>",
        )
        .unwrap();
    let q = r#"sum(for $p in doc("bib.xml")//price return xs:integer($p))"#;
    service.prepare(q).unwrap(); // warm the cache: every lookup below is a hit

    let (tx, rx) = mpsc::channel();
    let threads: Vec<_> = (0..8)
        .map(|_| {
            let service = service.clone();
            let tx = tx.clone();
            let q = q.to_string();
            std::thread::spawn(move || {
                for _ in 0..20 {
                    tx.send(service.run(&q)).unwrap();
                }
            })
        })
        .collect();
    drop(tx);
    let results: Vec<_> = rx.into_iter().collect();
    for t in threads {
        t.join().expect("no panics under concurrency");
    }
    assert_eq!(results.len(), 160);
    for r in results {
        assert_eq!(r.unwrap(), "42", "every thread sees the same answer");
    }
    let s = service.stats();
    assert_eq!(s.served, 160, "{s}");
    assert_eq!(s.plan_misses, 1, "one compile served all 160 runs: {s}");
    // A worker delivers the result before it decrements `active`, so the
    // gauge can lag a just-returned run() by a few microseconds — wait for
    // the pool to drain before asserting quiescence.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while service.stats().active != 0 && std::time::Instant::now() < deadline {
        std::thread::yield_now();
    }
    let s = service.stats();
    assert_eq!(s.active, 0, "{s}");
    assert_eq!(s.queued, 0, "{s}");
}

#[test]
fn stats_counters_are_consistent() {
    let service = QueryService::new(ServiceConfig::default());
    for i in 0..5 {
        service.run(&format!("{i} + {i}")).unwrap();
    }
    for _ in 0..5 {
        service.run("0 + 0").unwrap();
    }
    assert!(service.run("1 idiv 0").is_err());
    let s = service.stats();
    assert_eq!(
        s.plan_hits + s.plan_misses,
        s.plan_lookups,
        "hits + misses must equal lookups: {s}"
    );
    assert_eq!(s.served + s.failed, 11, "{s}");
    assert_eq!(
        s.latency_count,
        s.served + s.failed,
        "every finished query is timed: {s}"
    );
    assert_eq!(
        s.plan_entries, 6,
        "five distinct sums + the failing query: {s}"
    );
}

#[test]
fn service_level_deadlines_include_queue_wait() {
    let service = QueryService::new(ServiceConfig {
        max_concurrent: 1,
        max_queued: 8,
        per_query_limits: Limits::unlimited().with_deadline(Duration::from_millis(100)),
        ..Default::default()
    });
    // Both queries carry a 100 ms deadline from *submission*; the first
    // burns its own budget, and the second times out mostly in queue.
    let a = service
        .submit("sum(1 to 10000000000)", DynamicContext::new())
        .unwrap();
    let b = service
        .submit("sum(1 to 10000000000)", DynamicContext::new())
        .unwrap();
    assert_eq!(a.wait().unwrap_err().code, ErrorCode::Timeout);
    assert_eq!(b.wait().unwrap_err().code, ErrorCode::Timeout);
    assert_eq!(service.stats().failed, 2);
}

/// Satellite of the chaos PR: a worker panic mid-evaluation (injected
/// through the failpoint framework) must surface as the stable internal
/// error code and leave the service fully healthy — stats readable,
/// plan cache serving, later queries correct. Poisoned-lock recovery at
/// the structure level is covered by the pool and plan-cache unit tests.
#[test]
fn an_injected_worker_panic_leaves_the_service_healthy() {
    assert!(xqr_faults::compiled_with_failpoints());
    // Keep the injected panic quiet; real (unarmed) panics still print.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if !xqr_faults::armed() {
            default_hook(info);
        }
    }));

    let service = QueryService::new(ServiceConfig::default());
    assert_eq!(service.run("1 + 1").unwrap(), "2"); // warm the plan cache
    let err = {
        let _faults = xqr_faults::install(
            xqr_faults::FaultSchedule::new(11).rule(
                xqr_faults::FaultRule::new("eval.next", xqr_faults::FaultKind::Panic)
                    .one_in(1)
                    .max_fires(1),
            ),
        );
        service.run("2 + 3").unwrap_err()
    };
    // The panic is contained into the deterministic internal code — it
    // neither unwinds into the waiter nor triggers a retry.
    assert_eq!(err.code, ErrorCode::Internal);
    // The service keeps serving: the same query now answers, the cached
    // plan still hits, and the stats snapshot is consistent.
    assert_eq!(service.run("2 + 3").unwrap(), "5");
    assert_eq!(service.run("1 + 1").unwrap(), "2");
    let s = service.stats();
    assert_eq!(s.failed, 1, "{s}");
    assert!(s.plan_hits >= 1, "{s}");
    assert_eq!(s.served, 3, "{s}");
}

/// Dropping the service is a shutdown: queued-but-unstarted queries fail
/// with a stable coded error (never a hang), while the in-flight query
/// runs to its own deadline and reports normally.
#[test]
fn dropping_the_service_fails_queued_queries_with_a_stable_code() {
    let service = QueryService::new(ServiceConfig {
        max_concurrent: 1,
        max_queued: 8,
        per_query_limits: Limits::unlimited().with_deadline(Duration::from_millis(200)),
        ..Default::default()
    });
    // Occupy the single worker — waiting until the query is actually
    // running, not just queued — then queue a second query behind it.
    let slow = service
        .submit("sum(1 to 10000000000)", DynamicContext::new())
        .unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while service.stats().active == 0 {
        assert!(std::time::Instant::now() < deadline, "worker never started");
        std::thread::yield_now();
    }
    let queued = service.submit("1 + 1", DynamicContext::new()).unwrap();
    // Shutdown drops the queued job immediately and waits out the
    // in-flight one (bounded by its 200 ms deadline).
    drop(service);
    assert_eq!(queued.wait().unwrap_err().code, ErrorCode::Cancelled);
    assert_eq!(slow.wait().unwrap_err().code, ErrorCode::Timeout);
}
