//! Property tests on the data pipeline: XML text ↔ events ↔ tokens ↔
//! store are mutually faithful on arbitrary generated documents.

use proptest::prelude::*;
use std::sync::Arc;
use xqr::xqr_tokenstream::{decode, encode, tokens_to_xml, TokenStream};
use xqr::xqr_xmlparse::reserialize;
use xqr::{Document, Store};
use xqr_xdm::NamePool;

/// Strategy: a small random XML document as a string, built recursively
/// so it is well-formed by construction.
fn arb_xml() -> impl Strategy<Value = String> {
    let name = prop_oneof![Just("a"), Just("b"), Just("c"), Just("item"), Just("x-y")];
    let text = "[a-zA-Z0-9 ]{0,12}";
    let leaf = (name.clone(), text.prop_map(String::from)).prop_map(|(n, t)| {
        if t.is_empty() {
            format!("<{n}/>")
        } else {
            format!("<{n}>{t}</{n}>")
        }
    });
    leaf.prop_recursive(4, 64, 5, move |inner| {
        (
            prop_oneof![Just("r"), Just("node"), Just("wrap")],
            prop::collection::vec(inner, 0..5),
            prop::option::of(("[a-z]{1,4}", "[a-zA-Z0-9]{0,6}")),
        )
            .prop_map(|(n, children, attr)| {
                let attrs = match &attr {
                    Some((k, v)) => format!(" {k}=\"{v}\""),
                    None => String::new(),
                };
                if children.is_empty() {
                    format!("<{n}{attrs}/>")
                } else {
                    format!("<{n}{attrs}>{}</{n}>", children.join(""))
                }
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parse_serialize_fixpoint(xml in arb_xml()) {
        // parse → serialize is canonicalizing: a second pass is identity.
        let once = reserialize(&xml).unwrap();
        let twice = reserialize(&once).unwrap();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn tokens_roundtrip_xml(xml in arb_xml()) {
        let canonical = reserialize(&xml).unwrap();
        let names = Arc::new(NamePool::new());
        let stream = TokenStream::from_xml(&canonical, names).unwrap();
        let back = tokens_to_xml(&mut stream.iter(), Default::default()).unwrap();
        prop_assert_eq!(canonical, back);
    }

    #[test]
    fn wire_encoding_roundtrips(xml in arb_xml(), pooled in any::<bool>()) {
        let names = Arc::new(NamePool::new());
        let stream = TokenStream::from_xml(&xml, names).unwrap();
        let bytes = encode(&stream, pooled);
        let decoded = decode(bytes, Arc::new(NamePool::new())).unwrap();
        let a = tokens_to_xml(&mut stream.iter(), Default::default()).unwrap();
        let b = tokens_to_xml(&mut decoded.iter(), Default::default()).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn store_serialization_roundtrips(xml in arb_xml()) {
        let canonical = reserialize(&xml).unwrap();
        let names = Arc::new(NamePool::new());
        let doc = Document::parse(&canonical, names).unwrap();
        prop_assert_eq!(doc.serialize_node(doc.root()), canonical);
    }

    #[test]
    fn containment_labels_agree_with_parent_links(xml in arb_xml()) {
        let names = Arc::new(NamePool::new());
        let doc = Document::parse(&xml, names).unwrap();
        // For every pair (p, c) where p is c's parent: labels must agree.
        for i in 0..doc.len() as u32 {
            let n = xqr::NodeId(i);
            if let Some(p) = doc.parent(n) {
                prop_assert!(doc.is_ancestor(p, n), "parent must contain child");
                prop_assert_eq!(doc.level(p) + 1, doc.level(n));
            }
            // start/end well-formed
            prop_assert!(doc.end(n) >= doc.start(n));
        }
    }

    #[test]
    fn identity_query_is_faithful(xml in arb_xml()) {
        // Querying the root element and serializing it returns the
        // canonical document.
        let canonical = reserialize(&xml).unwrap();
        let engine = xqr::Engine::new();
        let out = engine.query_xml(&canonical, "/*").unwrap();
        prop_assert_eq!(canonical, out);
    }

    #[test]
    fn store_loads_are_queryable(xml in arb_xml()) {
        let store = Store::new();
        let id = store.load_xml(&xml, None).unwrap();
        let doc = store.document(id);
        // string-value of the root equals concatenated text.
        let sv = doc.string_value(doc.root());
        // cheap cross-check: every char of sv appears in the input
        prop_assert!(sv.chars().all(|c| xml.contains(c) || c.is_whitespace()));
    }
}
