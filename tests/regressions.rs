//! Named regression tests promoted from the checked-in proptest
//! regression seed files (`tests/*.proptest-regressions`).
//!
//! The seed files replay only when the owning proptest runs, are easy
//! to lose in refactors (they key on the *strategy*, so a changed
//! strategy silently orphans them), and say nothing about *why* the
//! case once failed. These tests pin the shrunken counterexamples as
//! plain `#[test]`s that always run, with the failing inputs inlined.

use std::sync::Arc;
use xqr::xqr_tokenstream::{decode, encode, tokens_to_xml, TokenStream};
use xqr::{Engine, EngineOptions, NodeId};
use xqr_xdm::NamePool;

/// From `proptest_roundtrip.proptest-regressions`
/// (`wire_encoding_roundtrips`, `pooled = true`): nested repeated tags
/// with empty and single-char attribute values. The pooled wire
/// encoding dedupes text through the buffer pool; this shape once broke
/// the decode side's pool reconstruction.
#[test]
fn wire_encoding_pooled_nested_repeats() {
    let xml = "<r><a>a</a><r><a>A</a><a>B</a><r a=\"\"><a>5</a></r><a>b</a></r>\
               <r><a> </a><r a=\"0\"><a>c</a></r><a>C</a></r></r>";
    let names = Arc::new(NamePool::new());
    let stream = TokenStream::from_xml(xml, names).unwrap();
    for pooled in [true, false] {
        let bytes = encode(&stream, pooled);
        let decoded = decode(bytes, Arc::new(NamePool::new())).unwrap();
        let a = tokens_to_xml(&mut stream.iter(), Default::default()).unwrap();
        let b = tokens_to_xml(&mut decoded.iter(), Default::default()).unwrap();
        assert_eq!(a, b, "pooled = {pooled}");
    }
}

/// From `proptest_semantics.proptest-regressions` (`pattern = "//d"`):
/// a document with `d` elements at several depths including
/// immediately-nested `d/d` — the shape that distinguishes "all
/// matches" from "outermost matches only".
const SEMANTICS_SEED_DOC: &str = "<root><t1></t1><d></d><d><d></d></d><a><t0>x</t0></a>\
     <t2><d></d></t2><a></a><a>x<d></d></a><d></d>\
     <t2><a></a><t1></t1><t0></t0></t2><a></a><t2><d></d><d></d></t2></root>";

/// The twig-join side of the pinned case: `//d` through the structural
/// join machinery must agree with exhaustive navigation.
#[test]
fn semantics_seed_doc_joins_agree_on_slash_slash_d() {
    use xqr::xqr_joins::{element_list, enumerate_matches, path_stack, twig_stack, TwigPattern};
    use xqr::Document;

    let names = Arc::new(NamePool::new());
    let doc = Document::parse(SEMANTICS_SEED_DOC, names.clone()).unwrap();
    let twig = TwigPattern::parse("//d", &names).unwrap();
    let lists: Vec<_> = twig
        .nodes
        .iter()
        .map(|n| element_list(&doc, n.name))
        .collect();
    let mut want = enumerate_matches(&doc, &twig);
    want.sort();
    want.dedup();
    assert_eq!(path_stack(&twig, &lists), want);
    let (got, _) = twig_stack(&twig, &lists);
    assert_eq!(got, want);
    // 8 `d` elements in the document, one nested inside another `d`.
    assert_eq!(want.len(), 8);
}

/// The engine side of the pinned case: optimized and unoptimized
/// evaluation agree on `//d` (and friends) over the seed document, and
/// the streaming matcher reports exactly the outermost matches.
#[test]
fn semantics_seed_doc_streaming_outermost() {
    let engine = Engine::new();
    let q = engine.compile("//d").unwrap();
    assert!(q.is_streamable());
    assert!(!q.streaming_is_exact());
    let mut count = 0u64;
    q.execute_streaming(&engine, SEMANTICS_SEED_DOC, |_| count += 1)
        .unwrap();
    // 8 `d` elements, but the `d/d` inner one has a `d` ancestor:
    // streaming emits outermost matches only.
    assert_eq!(count, 7);
    let outermost = engine
        .query_xml(SEMANTICS_SEED_DOC, "count(//d[empty(ancestor::d)])")
        .unwrap();
    assert_eq!(outermost, "7");
}

#[test]
fn semantics_seed_doc_optimizer_agrees() {
    for q in [
        "count(//d)",
        "(//d)[2]",
        "for $x in //a return count($x/d)",
        "string((//a)[1])",
    ] {
        let optimized = Engine::new().query_xml(SEMANTICS_SEED_DOC, q).unwrap();
        let baseline = Engine::with_options(EngineOptions::unoptimized())
            .query_xml(SEMANTICS_SEED_DOC, q)
            .unwrap();
        assert_eq!(optimized, baseline, "query {q}");
    }
}

/// The streaming extractor silently caps patterns at
/// [`StreamPattern::MAX_STEPS`] steps (the matcher's per-element prefix
/// state is a `u32` bitmask, so step 32 would shift out of it). A path
/// one step past the cap must still answer — via the navigational
/// path — not stream wrongly and not error.
#[test]
fn paths_beyond_the_streaming_step_cap_answer_navigationally() {
    use xqr::xqr_runtime::StreamPattern;

    let depth = StreamPattern::MAX_STEPS + 1;
    let mut xml = String::new();
    for _ in 0..depth {
        xml.push_str("<s>");
    }
    xml.push('x');
    for _ in 0..depth {
        xml.push_str("</s>");
    }
    let engine = Engine::new();

    // At the cap: still streamable, and streaming agrees with
    // materialized evaluation byte-for-byte.
    let at_cap = "/s".repeat(StreamPattern::MAX_STEPS);
    let plan = engine.compile(&at_cap).unwrap();
    assert!(plan.is_streamable() && plan.streaming_is_exact());
    let mut streamed = String::new();
    plan.execute_streaming(&engine, &xml, |m| streamed.push_str(m))
        .unwrap();
    assert_eq!(streamed, engine.query_xml(&xml, &at_cap).unwrap());

    // One past the cap: the plan quietly refuses to stream and the
    // navigational path answers correctly.
    let past_cap = "/s".repeat(depth);
    let plan = engine.compile(&past_cap).unwrap();
    assert!(
        !plan.is_streamable(),
        "{depth} steps exceed the streaming cap of {}",
        StreamPattern::MAX_STEPS
    );
    assert_eq!(engine.query_xml(&xml, &past_cap).unwrap(), "<s>x</s>");
}

/// Guard against the root-cause class of the roundtrip seed: documents
/// whose store form and wire form must agree node-for-node.
#[test]
fn roundtrip_seed_doc_store_form_is_stable() {
    let xml = "<r><a>a</a><r><a>A</a><a>B</a><r a=\"\"><a>5</a></r><a>b</a></r>\
               <r><a> </a><r a=\"0\"><a>c</a></r><a>C</a></r></r>";
    let names = Arc::new(NamePool::new());
    let doc = xqr::Document::parse(xml, names).unwrap();
    let once = doc.serialize_node(NodeId(0));
    let names2 = Arc::new(NamePool::new());
    let doc2 = xqr::Document::parse(&once, names2).unwrap();
    assert_eq!(doc2.serialize_node(NodeId(0)), once);
}

// ---------------------------------------------------------------------
// Morsel-boundary regressions for the parallel twig executor. The
// partition puts each root-list chunk in exactly one morsel and slices
// the other lists to the chunk's label window; these pin the seam cases
// where that slicing has to replicate, dedupe, or degenerate.

/// Serial vs parallel comparison over an explicit document and twig, at
/// an explicit morsel count.
fn assert_parallel_matches_serial(xml: &str, pattern: &str, morsels: usize) {
    use xqr::xqr_joins::{element_list, twig_stack, TwigPattern};
    use xqr::xqr_parallel::{parallel_twig_stack, ParallelConfig};
    use xqr::Document;
    use xqr_xdm::{Limits, QueryGuard};

    let names = Arc::new(NamePool::new());
    let doc = Document::parse(xml, names.clone()).unwrap();
    let twig = TwigPattern::parse(pattern, &names).unwrap();
    let lists: Vec<Vec<_>> = twig
        .nodes
        .iter()
        .map(|n| element_list(&doc, n.name))
        .collect();
    let (want, _) = twig_stack(&twig, &lists);
    let shared: Vec<_> = lists.into_iter().map(Arc::new).collect();
    let guard = QueryGuard::new(Limits::unlimited());
    let (got, run) =
        parallel_twig_stack(&twig, shared, &ParallelConfig::forced(morsels), &guard).unwrap();
    assert_eq!(
        got, want,
        "morsels={morsels} diverged on {pattern:?} over {xml:?} \
         (ran {} morsels)",
        run.morsels
    );
}

/// A deep chain of `a` elements whose only `b` witness sits at the
/// bottom: every chunk's ancestors *straddle* later chunks, so each
/// morsel's descendant window must extend to the chunk's maximum `end`,
/// not its last `start`.
#[test]
fn morsel_seam_straddling_ancestors_keep_their_deep_witness() {
    let mut xml = String::new();
    for _ in 0..7 {
        xml.push_str("<a>");
    }
    xml.push_str("<b/>");
    for _ in 0..7 {
        xml.push_str("</a>");
    }
    for morsels in [2, 3, 5, 7, 16] {
        assert_parallel_matches_serial(&xml, "//a//b", morsels);
        assert_parallel_matches_serial(&xml, "//a[b]", morsels);
    }
}

/// Witness lists replicated into adjacent morsel windows must not
/// produce duplicate tuples after the merge: sibling `a` subtrees share
/// `b`/`c` names right at the chunk seams.
#[test]
fn morsel_seam_replicated_witnesses_do_not_duplicate_tuples() {
    let xml = "<r>\
        <a><b/><c/></a><a><b/><b/><c/></a><a><c/></a>\
        <a><a><b/><c/></a><c/></a><a><b/><c/></a>\
        </r>";
    for morsels in [2, 3, 4, 5, 8] {
        assert_parallel_matches_serial(xml, "//a[b]/c", morsels);
        assert_parallel_matches_serial(xml, "//a[b][c]", morsels);
        assert_parallel_matches_serial(xml, "//a//c", morsels);
    }
}

/// More morsels than root-list entries: the tail chunks are empty and
/// must contribute nothing (and not panic on empty ranges).
#[test]
fn morsel_count_beyond_root_list_yields_empty_morsels() {
    let xml = "<r><a><b/></a><a/><a><b/></a></r>";
    for morsels in [4, 8, 64] {
        assert_parallel_matches_serial(xml, "//a//b", morsels);
    }
}

/// The degenerate single-node document: one root-list entry, every
/// forced split collapses to one non-empty morsel.
#[test]
fn morsel_split_of_a_single_node_document() {
    assert_parallel_matches_serial("<a/>", "//a", 4);
    assert_parallel_matches_serial("<a><b/></a>", "//a//b", 4);

    // And end to end through the engine: forced parallel on a one-node
    // document must still answer.
    use xqr::xqr_runtime::ParallelConfig;
    let engine =
        Engine::with_options(EngineOptions::default().with_parallel(ParallelConfig::forced(4)));
    assert_eq!(engine.query_xml("<a/>", "count(//a)").unwrap(), "1");
}
