//! Conformance-style integration suite: query text → expected serialized
//! result, end to end through the engine, grouped by language feature.
//! Every case also runs with the optimizer disabled and must agree.

#[allow(unused_imports)]
use xqr::Result;
use xqr::{DynamicContext, Engine, EngineOptions};

const BIB: &str = r#"<bib><book year="1994"><title>TCP/IP Illustrated</title><author><last>Stevens</last><first>W.</first></author><publisher>Addison-Wesley</publisher><price>65.95</price></book><book year="2000"><title>Data on the Web</title><author><last>Abiteboul</last><first>Serge</first></author><author><last>Buneman</last><first>Peter</first></author><author><last>Suciu</last><first>Dan</first></author><publisher>Morgan Kaufmann</publisher><price>39.95</price></book><book year="1999"><title>Economics of Tech</title><author><last>Shapiro</last><first>Carl</first></author><publisher>MIT Press</publisher><price>129.95</price></book><book year="1994"><title>Unix Programming</title><author><last>Stevens</last><first>W.</first></author><publisher>Addison-Wesley</publisher><price>65.95</price></book></bib>"#;

fn check_all(cases: &[(&str, &str)]) {
    for (query, expected) in cases {
        for optimize in [true, false] {
            let opts = if optimize {
                EngineOptions::default()
            } else {
                // No rewrites, no access-path selection, no indexes.
                EngineOptions::unoptimized()
            };
            let engine = Engine::with_options(opts);
            engine.load_document("bib.xml", BIB).unwrap();
            let q = engine
                .compile(query)
                .unwrap_or_else(|e| panic!("compile {query:?} (opt={optimize}): {e}"));
            let out = q
                .execute(&engine, &DynamicContext::new())
                .unwrap_or_else(|e| panic!("run {query:?} (opt={optimize}): {e}"))
                .serialize_guarded()
                .unwrap();
            assert_eq!(&out, expected, "query {query:?} (optimize={optimize})");
        }
    }
}

#[test]
fn arithmetic_and_literals() {
    check_all(&[
        ("1 + 4 * 2", "9"),
        ("(1 + 4) * 2", "10"),
        ("10 idiv 3", "3"),
        ("10 mod 3", "1"),
        ("10 div 4", "2.5"),
        ("-(3 - 5)", "2"),
        ("1.5 + 1.5", "3"),
        ("2.0e1 + 5", "25"),
        ("7 - -7", "14"),
    ]);
}

#[test]
fn sequence_operations() {
    check_all(&[
        ("count(())", "0"),
        ("count((1, 2, 3))", "3"),
        ("count((1, (2, 3), ()))", "3"),
        ("reverse((1, 2, 3))", "3 2 1"),
        ("subsequence((1, 2, 3, 4, 5), 2, 3)", "2 3 4"),
        ("insert-before((1, 3), 2, 2)", "1 2 3"),
        ("remove((1, 2, 3), 2)", "1 3"),
        ("index-of((10, 20, 10), 10)", "1 3"),
        ("distinct-values((1, 2, 1, 3, 2))", "1 2 3"),
        ("empty(())", "true"),
        ("exists(())", "false"),
        ("1 to 4", "1 2 3 4"),
        ("(1 to 3)[2]", "2"),
        ("string-join((\"a\", \"b\", \"c\"), \",\")", "a,b,c"),
    ]);
}

#[test]
fn string_functions() {
    check_all(&[
        ("upper-case(\"abc\")", "ABC"),
        ("lower-case(\"ABC\")", "abc"),
        ("concat(\"a\", 1, \"b\")", "a1b"),
        ("substring(\"hello\", 2)", "ello"),
        ("substring(\"hello\", 2, 2)", "el"),
        ("string-length(\"hello\")", "5"),
        ("contains(\"hello\", \"ell\")", "true"),
        ("starts-with(\"hello\", \"he\")", "true"),
        ("ends-with(\"hello\", \"lo\")", "true"),
        ("substring-before(\"k=v\", \"=\")", "k"),
        ("substring-after(\"k=v\", \"=\")", "v"),
        ("normalize-space(\" a  b \")", "a b"),
        ("translate(\"abcabc\", \"ab\", \"AB\")", "ABcABc"),
        ("tokenize(\"a,b,,c\", \",\")", "a b  c"),
        ("replace(\"banana\", \"a\", \"o\")", "bonono"),
        ("string-to-codepoints(\"AB\")", "65 66"),
        ("codepoints-to-string((72, 105))", "Hi"),
        ("compare(\"a\", \"b\")", "-1"),
    ]);
}

#[test]
fn numeric_functions() {
    check_all(&[
        ("abs(-2.5)", "2.5"),
        ("floor(-1.5)", "-2"),
        ("ceiling(-1.5)", "-1"),
        ("round(1.5)", "2"),
        ("round(-1.5)", "-1"),
        ("round-half-to-even(1.5)", "2"),
        ("round-half-to-even(0.5)", "0"),
        ("round-half-to-even(3.14159, 2)", "3.14"),
        ("sum((1, 2, 3, 4))", "10"),
        ("sum(())", "0"),
        ("avg((2, 4))", "3"),
        ("min((2.5, 1, 3))", "1"),
        ("max((2.5, 1, 3))", "3"),
        ("number(\"12\")", "12"),
        ("string(number(\"nope\"))", "NaN"),
    ]);
}

#[test]
fn comparisons_and_logic() {
    check_all(&[
        ("1 eq 1", "true"),
        ("1 ne 2", "true"),
        ("2 gt 1 and 1 lt 2", "true"),
        ("1 gt 2 or 2 gt 1", "true"),
        ("(1, 2, 3) = 2", "true"),
        ("(1, 2, 3) != 2", "true"),
        ("() = ()", "false"),
        ("not(0)", "true"),
        ("not(\"x\")", "false"),
        ("true() and false()", "false"),
        ("\"abc\" lt \"abd\"", "true"),
        ("1 eq 1.0", "true"),
    ]);
}

#[test]
fn conditionals_and_flwor() {
    check_all(&[
        ("if (2 gt 1) then \"a\" else \"b\"", "a"),
        ("for $x in (1, 2, 3) return $x * $x", "1 4 9"),
        ("for $x in (1, 2, 3) where $x mod 2 eq 1 return $x", "1 3"),
        ("let $s := (1, 2, 3) return sum($s)", "6"),
        ("for $x at $i in (\"a\", \"b\") return concat($i, $x)", "1a 2b"),
        ("for $x in (3, 1, 2) order by $x return $x", "1 2 3"),
        ("for $x in (1, 2) for $y in (3, 4) return $x * $y", "3 4 6 8"),
        ("some $x in (1, 2) satisfies $x eq 2", "true"),
        ("every $x in (1, 2) satisfies $x lt 3", "true"),
        (
            "typeswitch (3.5) case xs:integer return \"int\" case xs:decimal return \"dec\" default return \"other\"",
            "dec",
        ),
    ]);
}

#[test]
fn types_and_casts() {
    check_all(&[
        ("5 instance of xs:integer", "true"),
        ("5 instance of xs:decimal", "true"), // integer ⊆ decimal
        ("(1, 2) instance of xs:integer+", "true"),
        ("() instance of xs:integer?", "true"),
        ("\"x\" castable as xs:double", "false"),
        ("\"1e3\" cast as xs:double", "1000"),
        ("xs:string(12)", "12"),
        ("xs:boolean(\"true\")", "true"),
        ("xs:integer(\" 7 \")", "7"),
        ("(5 treat as xs:integer) + 1", "6"),
    ]);
}

#[test]
fn paths_over_bib() {
    check_all(&[
        ("count(doc(\"bib.xml\")//book)", "4"),
        ("count(doc(\"bib.xml\")/bib/book/author)", "6"),
        ("string(doc(\"bib.xml\")//book[2]/title)", "Data on the Web"),
        ("count(doc(\"bib.xml\")//book[@year = 1994])", "2"),
        ("count(doc(\"bib.xml\")//book[price > 60])", "3"),
        (
            "string(doc(\"bib.xml\")//book[count(author) eq 3]/title)",
            "Data on the Web",
        ),
        ("count(doc(\"bib.xml\")//author[last = \"Stevens\"])", "2"),
        ("count(doc(\"bib.xml\")//book/author[1])", "4"),
        ("count((doc(\"bib.xml\")//book/author)[1])", "1"),
        ("count(doc(\"bib.xml\")//book/@year)", "4"),
        ("count(distinct-values(doc(\"bib.xml\")//@year))", "3"),
        ("count(doc(\"bib.xml\")//last/ancestor::book)", "4"),
        ("count(doc(\"bib.xml\")//book/../book)", "4"),
        ("count(doc(\"bib.xml\")//*)", "35"),
        ("count(doc(\"bib.xml\")//text())", "24"),
        (
            "string(doc(\"bib.xml\")//book[last()]/title)",
            "Unix Programming",
        ),
        (
            "string((doc(\"bib.xml\")//book[price < 50]/title)[1])",
            "Data on the Web",
        ),
        (
            "count(doc(\"bib.xml\")//book[author/last = \"Suciu\"])",
            "1",
        ),
    ]);
}

#[test]
fn flwor_over_documents() {
    check_all(&[
        (
            "for $b in doc(\"bib.xml\")//book where $b/price < 50 return string($b/title)",
            "Data on the Web",
        ),
        (
            "for $b in doc(\"bib.xml\")//book order by number($b/price) descending return string($b/@year)",
            "1999 1994 1994 2000",
        ),
        (
            "for $y in distinct-values(doc(\"bib.xml\")//@year) order by $y return <year v=\"{$y}\">{count(doc(\"bib.xml\")//book[@year = $y])}</year>",
            "<year v=\"1994\">2</year><year v=\"1999\">1</year><year v=\"2000\">1</year>",
        ),
        (
            "sum(for $b in doc(\"bib.xml\")//book return $b/price)",
            "301.8",
        ),
        (
            "for $a in distinct-values(doc(\"bib.xml\")//last) order by $a return $a",
            "Abiteboul Buneman Shapiro Stevens Suciu",
        ),
    ]);
}

#[test]
fn constructors() {
    check_all(&[
        ("<a/>", "<a/>"),
        ("<a b=\"{1 + 1}\"/>", "<a b=\"2\"/>"),
        ("<a>{\"x\"}{\"y\"}</a>", "<a>x y</a>"),
        ("<a>x{\"y\"}</a>", "<a>xy</a>"),
        (
            "element e { attribute x { 1 }, \"body\" }",
            "<e x=\"1\">body</e>",
        ),
        (
            "<out>{doc(\"bib.xml\")//book[1]/title}</out>",
            "<out><title>TCP/IP Illustrated</title></out>",
        ),
        ("string(<a>one <b>two</b> three</a>)", "one two three"),
        ("document { <r/> }", "<r/>"),
        ("<a>{comment { \"note\" }}</a>", "<a><!--note--></a>"),
        ("count(<a><b/><c/></a>/*)", "2"),
    ]);
}

#[test]
fn node_operations() {
    check_all(&[
        (
            "let $d := doc(\"bib.xml\") return $d//book[1] is $d//book[1]",
            "true",
        ),
        (
            "let $d := doc(\"bib.xml\") return $d//book[1] is $d//book[2]",
            "false",
        ),
        (
            "let $d := doc(\"bib.xml\") return $d//book[1] << $d//book[2]",
            "true",
        ),
        (
            "count(doc(\"bib.xml\")//book union doc(\"bib.xml\")//book)",
            "4",
        ),
        (
            "count(doc(\"bib.xml\")//book intersect doc(\"bib.xml\")//book[@year = 1994])",
            "2",
        ),
        (
            "count(doc(\"bib.xml\")//book except doc(\"bib.xml\")//book[1])",
            "3",
        ),
        ("name(doc(\"bib.xml\")//book[1])", "book"),
        ("local-name(doc(\"bib.xml\")/*)", "bib"),
        ("count(root((doc(\"bib.xml\")//last)[1])//book)", "4"),
        ("deep-equal(<a><b/></a>, <a><b/></a>)", "true"),
        ("deep-equal(<a><b/></a>, <a><c/></a>)", "false"),
    ]);
}

#[test]
fn user_functions_and_variables() {
    check_all(&[
        (
            "declare function local:double($x as xs:integer) as xs:integer { $x * 2 }; local:double(21)",
            "42",
        ),
        (
            "declare function local:deep($n as xs:integer) as xs:integer {
               if ($n le 0) then 0 else 1 + local:deep($n - 1)
             }; local:deep(100)",
            "100",
        ),
        (
            "declare variable $base := 10;
             declare function local:scale($x) { $x * $base };
             local:scale(5)",
            "50",
        ),
        (
            "declare function local:titles($d) { $d//title };
             count(local:titles(doc(\"bib.xml\")))",
            "4",
        ),
    ]);
}

#[test]
fn namespaces() {
    check_all(&[
        (r#"declare namespace x = "urn:x"; name(<x:a/>)"#, "x:a"),
        (
            r#"declare namespace x = "urn:x"; namespace-uri(<x:a/>)"#,
            "urn:x",
        ),
        (
            // Constructor xmlns scopes end at the constructor; the path
            // prefix must come from the prolog.
            r#"declare namespace p = "urn:p"; count(<r xmlns:p="urn:p"><p:a/><a/></r>/p:a)"#,
            "1",
        ),
        (
            r#"declare default element namespace "urn:d"; local-name(<a/>)"#,
            "a",
        ),
    ]);
}

#[test]
fn dates_and_durations() {
    check_all(&[
        (r#"xs:date("2004-09-14") > xs:date("2004-01-01")"#, "true"),
        (
            r#"string(xs:date("2004-01-31") + xs:yearMonthDuration("P1M"))"#,
            "2004-02-29",
        ),
        (
            r#"string(xs:dateTime("2004-09-14T10:00:00Z") - xs:dayTimeDuration("PT90M"))"#,
            "2004-09-14T08:30:00Z",
        ),
        (r#"year-from-date(xs:date("1967-05-20"))"#, "1967"),
        (
            r#"month-from-dateTime(xs:dateTime("2004-09-14T10:11:12"))"#,
            "9",
        ),
        (r#"string(xs:dayTimeDuration("PT2H") * 2)"#, "PT4H"),
        (
            r#"string(add-date(xs:date("2002-05-20"), xs:yearMonthDuration("P1Y")))"#,
            "2003-05-20",
        ),
    ]);
}

#[test]
fn regex_matches_function() {
    check_all(&[
        (r#"matches("abracadabra", "bra")"#, "true"),
        (r#"matches("abracadabra", "a.*a")"#, "true"),
        (r#"matches("banana", "b[ae]n")"#, "true"),
        (r#"matches("banana", "q")"#, "false"),
        (r#"matches("a1", "\d")"#, "true"),
    ]);
}

#[test]
fn unsupported_features_have_clear_errors() {
    let engine = Engine::new();
    let e = engine.compile("validate { <a/> }").map(|_| ()).unwrap_err();
    assert!(e.message.contains("schema validation"), "{e}");
    let e = engine
        .compile(r#"import module namespace m = "urn:m"; 1"#)
        .map(|_| ())
        .unwrap_err();
    assert!(e.message.contains("module feature"), "{e}");
}

#[test]
fn sibling_and_order_axes() {
    check_all(&[
        (
            "string(doc(\"bib.xml\")//book[1]/following-sibling::book[1]/title)",
            "Data on the Web",
        ),
        (
            "string(doc(\"bib.xml\")//book[2]/preceding-sibling::book[1]/title)",
            "TCP/IP Illustrated",
        ),
        ("count(doc(\"bib.xml\")//book[1]/following-sibling::*)", "3"),
        ("count(doc(\"bib.xml\")//book[4]/following-sibling::*)", "0"),
        // `following` crosses subtree boundaries; `following-sibling` not.
        ("count(doc(\"bib.xml\")//author[1]/following::price)", "4"),
        ("count(doc(\"bib.xml\")//book[2]/preceding::title)", "1"),
        (
            "count((doc(\"bib.xml\")//price)[1]/ancestor-or-self::*)",
            "3",
        ),
        ("count(doc(\"bib.xml\")//book[self::book])", "4"),
        (
            "count(doc(\"bib.xml\")//book/descendant-or-self::book)",
            "4",
        ),
        ("count(doc(\"bib.xml\")//book/descendant::last)", "6"),
    ]);
}

#[test]
fn whitespace_and_text_handling() {
    check_all(&[
        // Boundary whitespace in constructors is stripped…
        ("<a>  <b/>  </a>", "<a><b/></a>"),
        // …but whitespace inside text runs survives.
        ("<a>x y</a>", "<a>x y</a>"),
        ("string(<a> padded </a>)", " padded "),
        // Entity refs in constructor content.
        ("<a>&lt;tag&gt;</a>", "<a>&lt;tag&gt;</a>"),
        ("string(<a>&amp;</a>)", "&"),
        // CDATA in queried documents becomes plain text.
        ("string(<a><![CDATA[<raw>]]></a>)", "<raw>"),
    ]);
}

#[test]
fn positional_semantics() {
    check_all(&[
        // position() in predicates counts per filter pass.
        ("(10, 20, 30)[position() gt 1]", "20 30"),
        ("(10, 20, 30)[position() lt last()]", "10 20"),
        ("(10, 20, 30)[2]", "20"),
        // predicates on predicates
        ("((1 to 10)[. mod 2 eq 0])[2]", "4"),
        // numeric non-integer positions select nothing
        ("(10, 20, 30)[1.5]", ""),
        // boolean-valued numeric comparisons still filter
        ("(1 to 5)[. gt 3]", "4 5"),
        // positional over path steps is per context node
        ("for $i in 1 to 3 return (string($i), \"|\")", "1 | 2 | 3 |"),
    ]);
}

#[test]
fn duration_component_accessors() {
    check_all(&[
        (
            r#"years-from-duration(xs:yearMonthDuration("P20Y15M"))"#,
            "21",
        ),
        (
            r#"months-from-duration(xs:yearMonthDuration("P20Y15M"))"#,
            "3",
        ),
        (r#"days-from-duration(xs:dayTimeDuration("P3DT10H"))"#, "3"),
        (
            r#"hours-from-duration(xs:dayTimeDuration("P3DT10H"))"#,
            "10",
        ),
        (
            r#"minutes-from-duration(xs:dayTimeDuration("PT90M"))"#,
            "30",
        ),
        (
            r#"seconds-from-duration(xs:dayTimeDuration("PT90.5S"))"#,
            "30.5",
        ),
        (
            r#"years-from-duration(xs:yearMonthDuration("-P15M"))"#,
            "-1",
        ),
        (
            r#"months-from-duration(xs:yearMonthDuration("-P15M"))"#,
            "-3",
        ),
    ]);
}

#[test]
fn order_by_edge_cases() {
    check_all(&[
        // Stable sort preserves input order for equal keys.
        (
            "for $x in (\"b1\", \"a1\", \"b2\", \"a2\") stable order by substring($x, 1, 1) return $x",
            "a1 a2 b1 b2",
        ),
        // Untyped keys order as strings.
        (
            "for $x in (<v>10</v>, <v>9</v>, <v>1</v>) order by $x return string($x)",
            "1 10 9",
        ),
        // Numeric keys order numerically.
        (
            "for $x in (<v>10</v>, <v>9</v>, <v>1</v>) order by number($x) return string($x)",
            "1 9 10",
        ),
        // Secondary keys break ties.
        (
            "for $x in (21, 12, 11, 22) order by $x mod 10, $x idiv 10 return $x",
            "11 21 12 22",
        ),
        // Descending with an empty key (via a child lookup that may
        // not exist).
        (
            "for $x in (<v><k>1</k></v>, <v/>, <v><k>2</k></v>) order by number($x/k) descending empty greatest return count($x/k)",
            "1 0 1",
        ),
    ]);
}

#[test]
fn collection_function() {
    let engine = Engine::with_options(EngineOptions::default());
    let d1 = engine.load_document("a.xml", "<a><x/></a>").unwrap();
    let d2 = engine.load_document("b.xml", "<b><x/><x/></b>").unwrap();
    let q = engine.compile("count(collection()//x)").unwrap();
    let mut ctx = DynamicContext::new();
    ctx.default_collection = vec![
        xqr::NodeRef::new(d1, xqr::NodeId(0)),
        xqr::NodeRef::new(d2, xqr::NodeId(0)),
    ];
    assert_eq!(
        q.execute(&engine, &ctx)
            .unwrap()
            .serialize_guarded()
            .unwrap(),
        "3"
    );
    // collection(uri) behaves like doc(uri).
    assert_eq!(
        engine.query(r#"count(collection("b.xml")//x)"#).unwrap(),
        "2"
    );
}

#[test]
fn aggregates_on_non_numeric_types() {
    check_all(&[
        (r#"min(("banana", "apple", "cherry"))"#, "apple"),
        (r#"max(("banana", "apple", "cherry"))"#, "cherry"),
        (
            r#"string(min((xs:date("2004-01-01"), xs:date("1999-12-31"))))"#,
            "1999-12-31",
        ),
        (
            r#"string(max((xs:dayTimeDuration("PT1H"), xs:dayTimeDuration("PT90M"))))"#,
            "PT1H30M",
        ),
        // Untyped values in min/max coerce to double.
        ("min((<v>3</v>, <v>1</v>, <v>2</v>))", "1"),
    ]);
}

#[test]
fn deep_nesting_documents() {
    // A 300-deep document queried end to end (store, axes, string-value).
    let mut xml = String::new();
    for _ in 0..300 {
        xml.push_str("<n>");
    }
    xml.push('x');
    for _ in 0..300 {
        xml.push_str("</n>");
    }
    let engine = Engine::new();
    assert_eq!(engine.query_xml(&xml, "count(//n)").unwrap(), "300");
    assert_eq!(engine.query_xml(&xml, "string(/n)").unwrap(), "x");
    assert_eq!(
        engine
            .query_xml(&xml, "count((//n)[last()]/ancestor::n)")
            .unwrap(),
        "299"
    );
}

#[test]
fn mixed_document_features_together() {
    // One query exercising constructors + joins + order + aggregates.
    let out = run_once(
        r#"
        let $data := <sales>
            <sale region="east" amount="100"/>
            <sale region="west" amount="250"/>
            <sale region="east" amount="50"/>
            <sale region="west" amount="25"/>
            <sale region="north" amount="70"/>
        </sales>
        for $r in distinct-values($data/sale/@region)
        let $sales := $data/sale[@region = $r]
        order by sum(for $s in $sales return number($s/@amount)) descending
        return <region name="{$r}" total="{sum(for $s in $sales return number($s/@amount))}"/>
        "#,
    );
    assert_eq!(
        out,
        r#"<region name="west" total="275"/><region name="east" total="150"/><region name="north" total="70"/>"#
    );
}

fn run_once(q: &str) -> String {
    let engine = Engine::new();
    engine.load_document("bib.xml", BIB).unwrap();
    engine.query(q).unwrap()
}

#[test]
fn boundary_space_declaration() {
    let engine = Engine::new();
    // Default: strip.
    assert_eq!(engine.query("<a> <b/> </a>").unwrap(), "<a><b/></a>");
    // Preserve keeps the whitespace text nodes.
    assert_eq!(
        engine
            .query("declare boundary-space preserve; <a> <b/> </a>")
            .unwrap(),
        "<a> <b/> </a>"
    );
    assert_eq!(
        engine
            .query("declare boundary-space strip; <a> <b/> </a>")
            .unwrap(),
        "<a><b/></a>"
    );
}

#[test]
fn comments_and_pis_as_nodes() {
    check_all(&[
        // Direct comment/PI constructors inside elements.
        ("<a><!--note--></a>", "<a><!--note--></a>"),
        ("<a><?target data?></a>", "<a><?target data?></a>"),
        // Kind tests select them.
        ("count(<a><!--x--><b/><!--y--></a>/comment())", "2"),
        ("string((<a><!--note--></a>/comment())[1])", "note"),
        ("count(<a><?p d?><?q e?></a>/processing-instruction())", "2"),
        (
            "count(<a><?p d?><?q e?></a>/processing-instruction(\"p\"))",
            "1",
        ),
        (
            "name((<a><?tgt d?></a>/processing-instruction())[1])",
            "tgt",
        ),
        (
            "string((<a><?tgt some data?></a>/processing-instruction())[1])",
            "some data",
        ),
        // Comments/PIs are not elements or text.
        ("count(<a><!--x--></a>/*)", "0"),
        ("count(<a><!--x--></a>/text())", "0"),
        // node() sees all child kinds.
        ("count(<a>t<!--c--><?p d?><b/></a>/node())", "4"),
        // typed-value of comments is xs:string (not untyped).
        ("(<a><!--5--></a>/comment()) instance of comment()", "true"),
    ]);
}

#[test]
fn static_typing_strict_engine_mode() {
    use xqr::CompileOptions;
    let strict = Engine::with_options(EngineOptions {
        compile: CompileOptions {
            static_typing: true,
            ..Default::default()
        },
        ..Default::default()
    });
    // Provable type errors are rejected at compile time.
    assert!(strict.compile("\"a\" + 1").map(|_| ()).is_err());
    // Untyped data stays fine (dynamic typing).
    assert_eq!(strict.query("<a>3</a> + 1").unwrap(), "4");
    // Declared function types are checked statically.
    assert!(strict
        .compile("declare function local:f() as xs:integer { \"s\" }; local:f()")
        .map(|_| ())
        .is_err());
}

#[test]
fn positional_predicates_on_axis_steps() {
    check_all(&[
        // Positional predicates bind per context node on an axis step…
        ("count(doc(\"bib.xml\")//book/author[1])", "4"),
        ("count(doc(\"bib.xml\")//book/author[2])", "1"),
        // …but once per whole sequence on a parenthesized filter.
        ("count((doc(\"bib.xml\")//book/author)[2])", "1"),
        (
            "string(doc(\"bib.xml\")//book[2]/author[2]/last)",
            "Buneman",
        ),
        (
            "string(doc(\"bib.xml\")//book[position() = 3]/title)",
            "Economics of Tech",
        ),
        (
            "string-join(doc(\"bib.xml\")//book[position() gt 2]/title, \";\")",
            "Economics of Tech;Unix Programming",
        ),
        // last() relative to the step's own context sequence.
        (
            "string-join(doc(\"bib.xml\")//book/author[last()]/last, \" \")",
            "Stevens Suciu Shapiro Stevens",
        ),
        (
            "string(doc(\"bib.xml\")//book[last() - 1]/title)",
            "Economics of Tech",
        ),
        // Positional predicate after a non-positional one.
        (
            "string(doc(\"bib.xml\")//book[price > 40][2]/title)",
            "Economics of Tech",
        ),
        // Reverse axes number positions in reverse document order.
        (
            "string(doc(\"bib.xml\")//book[4]/preceding-sibling::book[1]/title)",
            "Economics of Tech",
        ),
        (
            "string(doc(\"bib.xml\")//book[4]/preceding-sibling::book[3]/title)",
            "TCP/IP Illustrated",
        ),
        ("string((doc(\"bib.xml\")//last)[last()])", "Stevens"),
    ]);
}

#[test]
fn backward_axes() {
    check_all(&[
        // ancestor / ancestor-or-self (step results deduplicate: the six
        // `last` elements share `bib` and the four `book`/`author`
        // chains, leaving 11 distinct ancestors).
        ("count(doc(\"bib.xml\")//last/ancestor::*)", "11"),
        ("count(doc(\"bib.xml\")//last/ancestor-or-self::*)", "17"),
        ("count(doc(\"bib.xml\")//first/ancestor::bib)", "1"),
        (
            "string((doc(\"bib.xml\")//last[. = \"Suciu\"]/ancestor::book/title)[1])",
            "Data on the Web",
        ),
        // parent
        ("count(doc(\"bib.xml\")//author/parent::book)", "4"),
        ("count(doc(\"bib.xml\")//title/..)", "4"),
        // preceding covers everything strictly before the context node
        // (ancestors excluded; the earlier books are siblings).
        ("count(doc(\"bib.xml\")//book[3]/preceding::book)", "2"),
        (
            "count(doc(\"bib.xml\")//book[3]/preceding-sibling::book)",
            "2",
        ),
        ("count(doc(\"bib.xml\")//book[3]/preceding::author)", "4"),
        // Results come back in document order regardless of axis
        // direction.
        (
            "string-join(doc(\"bib.xml\")//book[3]/preceding-sibling::book/title, \";\")",
            "TCP/IP Illustrated;Data on the Web",
        ),
        // A backward axis composed after a forward one.
        (
            "count(doc(\"bib.xml\")//price/preceding-sibling::author/last)",
            "6",
        ),
        ("count(doc(\"bib.xml\")//price/ancestor::book/author)", "6"),
    ]);
}

/// The structural-join execution path (element lists + stack joins) must
/// agree with exhaustive navigation on the same conformance document the
/// engine-level sections above use.
#[test]
fn twig_joins_agree_with_navigation_on_bib() {
    use std::sync::Arc;
    use xqr::xqr_joins::{element_list, enumerate_matches, path_stack, twig_stack, TwigPattern};
    use xqr::Document;
    use xqr_xdm::NamePool;

    let names = Arc::new(NamePool::new());
    let doc = Document::parse(BIB, names.clone()).unwrap();
    for pattern in [
        "//book//last",
        "//book/author",
        "//book/author/last",
        "//bib//author//first",
        "//book[author]/title",
        "//book[author/last]/price",
    ] {
        let twig = TwigPattern::parse(pattern, &names).unwrap();
        let lists: Vec<_> = twig
            .nodes
            .iter()
            .map(|n| element_list(&doc, n.name))
            .collect();
        let mut want = enumerate_matches(&doc, &twig);
        want.sort();
        want.dedup();
        if twig.is_path() {
            assert_eq!(path_stack(&twig, &lists), want, "path_stack {pattern}");
        }
        let (got, _) = twig_stack(&twig, &lists);
        assert_eq!(got, want, "twig_stack {pattern}");
    }
}
