//! Cancellation latency for the morsel executor, end to end through
//! the engine: cancelling a running parallel query must (a) surface
//! `err:XQRL0003`, and (b) stop *every* morsel worker promptly — no
//! thread may still be touching the query's inputs after the error
//! returns. The morsel tick polls the cancel flag on every kernel
//! advance, so the stop is bounded by one advance, not by morsel size.

use std::sync::Mutex;
use std::time::{Duration, Instant};
use xqr::xqr_runtime::ParallelConfig;
use xqr::{context_with_doc, Engine, EngineOptions};
use xqr_xdm::{ErrorCode, Limits, QueryGuard};

/// Both tests read process-wide morsel-pool gauges; serialize them so
/// neither sees the other's in-flight morsels.
static POOL_GAUGES: Mutex<()> = Mutex::new(());

/// Deep recursive nesting makes `//t//t` quadratic in the nesting
/// depth: plenty of kernel advances for the cancel to land mid-join.
fn deep_doc(depth: usize) -> String {
    let mut xml = String::with_capacity(depth * 7 + 16);
    for _ in 0..depth {
        xml.push_str("<t>");
    }
    xml.push('x');
    for _ in 0..depth {
        xml.push_str("</t>");
    }
    format!("<r>{xml}</r>")
}

#[test]
fn cancelling_a_parallel_query_stops_all_morsels() {
    let _gauges = POOL_GAUGES.lock().unwrap();
    let options = EngineOptions::default().with_parallel(ParallelConfig::forced(4));
    let engine = Engine::with_options(options);
    let xml = deep_doc(1200);
    let ctx = context_with_doc(&engine, "cancel.xml", &xml).unwrap();
    let prepared = engine.compile("count(//t[t]//t)").unwrap();

    let guard = QueryGuard::new(Limits::unlimited());
    let handle = guard.cancel_handle();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(5));
        handle.cancel();
    });

    let err = prepared
        .execute_guarded(&engine, &ctx, guard)
        .expect_err("a cancelled quadratic join must not complete");
    assert_eq!(err.code, ErrorCode::Cancelled, "{err}");
    canceller.join().unwrap();

    // The executor drains every submitted morsel before returning, so
    // by the time the error is visible no pool worker should still be
    // running our morsels. Poll briefly: other tests share the global
    // pool, so give unrelated work a moment to clear too.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if xqr::xqr_parallel::morsel_pool().stats().active == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "morsel workers still active 5s after cancellation returned: {:?}",
            xqr::xqr_parallel::morsel_pool().stats()
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn a_pre_cancelled_guard_never_starts_morsels() {
    let _gauges = POOL_GAUGES.lock().unwrap();
    let options = EngineOptions::default().with_parallel(ParallelConfig::forced(4));
    let engine = Engine::with_options(options);
    let xml = deep_doc(64);
    let ctx = context_with_doc(&engine, "pre.xml", &xml).unwrap();
    let prepared = engine.compile("count(//t//t)").unwrap();

    let guard = QueryGuard::new(Limits::unlimited());
    guard.cancel_handle().cancel();
    let before = xqr::xqr_parallel::parallel_stats().morsels_run;
    let err = prepared
        .execute_guarded(&engine, &ctx, guard)
        .expect_err("cancelled before start");
    assert_eq!(err.code, ErrorCode::Cancelled, "{err}");
    assert_eq!(
        xqr::xqr_parallel::parallel_stats().morsels_run,
        before,
        "a pre-cancelled query must fail at startup, before any morsel runs"
    );
}
