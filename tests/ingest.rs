//! Integration tests for chunked ingestion: the `xqr-ingest` pipeline,
//! the service chunk sessions, and the streaming query front-end.
//!
//! The invariant under test everywhere: **a document fed in chunks —
//! split at any byte boundary, including mid-tag, mid-entity, mid-CDATA,
//! and mid-UTF-8 — is indistinguishable from the same document handed
//! over whole.** Same events, same results, same error codes, same
//! absolute error offsets.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use xqr::xqr_service::{QueryService, ServiceConfig};
use xqr::xqr_xmlparse::{XmlEvent, XmlReader};
use xqr::{Engine, ErrorCode};

/// Documents chosen so that *some* split point lands inside every
/// construct the lexer has to resume across.
const ADVERSARIAL: &[&str] = &[
    // Multi-byte UTF-8 in text and attribute values: 2-byte (é), 3-byte
    // (日), and 4-byte (𝄞) sequences a 1-byte split always severs.
    "<a t=\"caf\u{e9}\"><b>\u{65e5}\u{672c}\u{8a9e} \u{1d11e}</b>caf\u{e9}</a>",
    // CDATA with markup-looking content and bracket runs near the end.
    "<r><a><![CDATA[<not>&a tag;]]></a><a><![CDATA[x]]]]></a></r>",
    // Character and entity references, adjacent and back-to-back.
    "<a>&amp;&lt;&gt;&#65;&#x42;</a>",
    // Attributes with both quote styles and references inside values.
    "<a one=\"x&amp;y\" two='&#x41;'><b empty=\"\"/></a>",
    // Comments and processing instructions with hyphens and '?'.
    "<a><!-- a - b - ok --><?pi some ? data?><b/></a>",
    // Deep nesting and empty-element tags mixed with text.
    "<r><a><b><c><d>x</d></c></b></a><a/>tail<a></a></r>",
    // Whitespace-heavy prolog-ish spacing inside tags.
    "<a  one = \"1\"\n\ttwo='2' ><b\n/></a>",
];

fn whole_document_events(xml: &str) -> Vec<XmlEvent> {
    let mut reader = XmlReader::new(xml);
    let mut events = Vec::new();
    loop {
        let ev = reader.next_event().expect("whole-document parse");
        let end = ev == XmlEvent::EndDocument;
        events.push(ev);
        if end {
            return events;
        }
    }
}

fn chunked_events(chunks: &[&[u8]]) -> xqr::xqr_xdm::Result<Vec<XmlEvent>> {
    let mut reader = XmlReader::incremental();
    let mut events = Vec::new();
    for chunk in chunks {
        reader.feed(chunk)?;
        while let Some(ev) = reader.poll_event()? {
            events.push(ev);
        }
    }
    reader.finish()?;
    while let Some(ev) = reader.poll_event()? {
        events.push(ev);
    }
    Ok(events)
}

/// Every two-chunk split of every adversarial document — the exhaustive
/// boundary sweep — plus the degenerate 1-byte-per-chunk feed, must
/// produce the whole-document event sequence exactly.
#[test]
fn every_chunk_boundary_parses_identically() {
    for xml in ADVERSARIAL {
        let bytes = xml.as_bytes();
        let reference = whole_document_events(xml);

        for split in 0..=bytes.len() {
            let events = chunked_events(&[&bytes[..split], &bytes[split..]])
                .unwrap_or_else(|e| panic!("split {split} of {xml:?}: {e}"));
            assert_eq!(events, reference, "split {split} of {xml:?}");
        }

        let one_byte: Vec<&[u8]> = bytes.chunks(1).collect();
        let events =
            chunked_events(&one_byte).unwrap_or_else(|e| panic!("1-byte feed of {xml:?}: {e}"));
        assert_eq!(events, reference, "1-byte feed of {xml:?}");
    }
}

/// Malformed documents must fail the same way chunked as whole: the
/// same error code and the same *absolute* byte offset, no matter how
/// many chunk boundaries the bytes crossed first.
#[test]
fn chunked_errors_match_whole_document_errors_with_absolute_offsets() {
    let malformed: &[&str] = &[
        "<a><b></a>",                   // mismatched end tag
        "<a>&unknown;</a>",             // unknown entity
        "<a attr=oops></a>",            // unquoted attribute value
        "<a>x</a><a>trailing</a>junk<", // content past the root, then EOF mid-tag
        "<a>\u{65e5}<b></a>",           // error after multi-byte text
    ];
    for xml in malformed {
        let whole = {
            let mut reader = XmlReader::new(xml);
            loop {
                match reader.next_event() {
                    Ok(XmlEvent::EndDocument) => panic!("{xml:?} parsed whole"),
                    Ok(_) => continue,
                    Err(e) => break e,
                }
            }
        };
        let one_byte: Vec<&[u8]> = xml.as_bytes().chunks(1).collect();
        let chunked = chunked_events(&one_byte)
            .err()
            .unwrap_or_else(|| panic!("{xml:?} parsed chunked"));

        assert_eq!(chunked.code, whole.code, "{xml:?}");
        assert_eq!(
            chunked.position, whole.position,
            "offsets must be absolute, not chunk-relative: {xml:?}"
        );
        assert!(
            chunked.position.is_some(),
            "lexer errors carry a byte offset: {xml:?} -> {chunked}"
        );
        assert!(
            chunked.to_string().contains("at offset"),
            "rendered error names the offset: {chunked}"
        );
    }
}

const BIB: &str = r#"<bib><book year="1994"><title>TCP/IP Illustrated</title><price>65.95</price></book><book year="2000"><title>Data on the Web</title><price>39.95</price></book></bib>"#;

/// Service chunk sessions against the whole-document publish: same
/// per-subscription results for a streamed path and a fallback query,
/// at chunk sizes from 1 byte up.
#[test]
fn chunk_sessions_match_whole_document_publishes() {
    let service = QueryService::new(ServiceConfig::default());
    let streamed = service.subscribe("/bib/book").unwrap();
    let fallback = service.subscribe("count(//price)").unwrap();

    let whole = service.publish("bib.xml", BIB).unwrap();

    for chunk_len in [1usize, 3, 16, BIB.len()] {
        let sid = service.open_chunk_session("bib.xml").unwrap();
        for chunk in BIB.as_bytes().chunks(chunk_len) {
            service.feed_chunk(sid, chunk).unwrap();
        }
        let report = service.finish_chunk_session(sid).unwrap();
        for sub in [streamed, fallback] {
            assert_eq!(
                report.result_for(sub),
                whole.result_for(sub),
                "chunk_len={chunk_len}"
            );
        }
    }

    // Nothing was retained: publishes are transient either way.
    assert_eq!(service.engine().store().doc_count(), 0);
    let stats = service.stats();
    assert_eq!(stats.ingest_sessions_opened, 4, "{stats}");
    assert_eq!(stats.ingest_sessions_finished, 4, "{stats}");
    assert_eq!(stats.ingest_sessions_active, 0, "{stats}");
    assert!(format!("{stats}").contains("ingest:"), "{stats}");
}

/// Streamed subscriptions deliver while bytes are still arriving —
/// time-to-first-match does not wait for the document to end.
#[test]
fn matches_arrive_before_the_document_ends() {
    let service = QueryService::new(ServiceConfig::default());
    let sub = service.subscribe("/log/hit").unwrap();

    let head = "<log><hit>first</hit>";
    let tail = "<pad>x</pad><hit>second</hit></log>";
    let sid = service.open_chunk_session("log.xml").unwrap();
    service.feed_chunk(sid, head.as_bytes()).unwrap();
    assert_eq!(
        service.chunk_session_matches(sid).unwrap(),
        1,
        "the first match is visible before the tail is fed"
    );
    service.feed_chunk(sid, tail.as_bytes()).unwrap();
    let report = service.finish_chunk_session(sid).unwrap();
    assert_eq!(
        report.result_for(sub).unwrap().as_deref(),
        Ok("<hit>first</hit><hit>second</hit>")
    );
    service.unsubscribe(sub);
}

/// Sixteen slow clients drip-feeding chunk sessions must not starve a
/// fast interactive query: session feeding happens on the callers'
/// threads, never on the service's worker pool.
#[test]
fn slow_clients_do_not_starve_fast_queries() {
    let service = QueryService::new(ServiceConfig {
        max_chunk_sessions: 16,
        ..Default::default()
    });
    let sub = service.subscribe("/doc/item").unwrap();
    let delivered = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for client in 0..16 {
            let service = &service;
            let delivered = &delivered;
            scope.spawn(move || {
                let xml = format!("<doc><item>{client}</item><item>x</item></doc>");
                let sid = service
                    .open_chunk_session(&format!("drip-{client}.xml"))
                    .unwrap();
                for chunk in xml.as_bytes().chunks(3) {
                    service.feed_chunk(sid, chunk).unwrap();
                    std::thread::sleep(Duration::from_millis(2));
                }
                let report = service.finish_chunk_session(sid).unwrap();
                assert!(report.result_for(sub).unwrap().is_ok());
                delivered.fetch_add(1, Ordering::Relaxed);
            });
        }

        // While every slot drips, interactive queries stay fast.
        let started = Instant::now();
        for _ in 0..10 {
            assert_eq!(service.run("1 + 1").unwrap(), "2");
        }
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "fast queries must not queue behind drip-feeding clients: {:?}",
            started.elapsed()
        );
    });

    assert_eq!(delivered.load(Ordering::Relaxed), 16);
    let stats = service.stats();
    assert_eq!(stats.ingest_sessions_finished, 16, "{stats}");
    assert_eq!(stats.ingest_sessions_active, 0, "{stats}");
}

/// Admission control: a full slot table rejects with the overload code
/// rather than queueing unboundedly, and aborted sessions free slots.
#[test]
fn session_admission_is_bounded_and_aborts_free_slots() {
    let service = QueryService::new(ServiceConfig {
        max_chunk_sessions: 2,
        ..Default::default()
    });
    let a = service.open_chunk_session("a.xml").unwrap();
    let b = service.open_chunk_session("b.xml").unwrap();
    let err = service.open_chunk_session("c.xml").unwrap_err();
    assert_eq!(err.code, ErrorCode::Overloaded);

    assert!(service.abort_chunk_session(a));
    let c = service.open_chunk_session("c.xml").unwrap();

    // Stale ids never touch the slot's new tenant.
    let stale = service.feed_chunk(a, b"<x/>").unwrap_err();
    assert_eq!(stale.code, ErrorCode::Cancelled);
    assert!(!service.abort_chunk_session(a));

    assert!(service.abort_chunk_session(b));
    assert!(service.abort_chunk_session(c));
    assert_eq!(service.chunk_sessions(), 0);
}

/// A large document pushed through a stream query holds the token
/// channel at (or under) its configured capacity: memory is bounded by
/// the channel, not the document.
#[test]
fn stream_queries_hold_the_token_channel_at_its_cap() {
    let capacity = 32;
    let service = QueryService::new(ServiceConfig {
        ingest_channel_capacity: capacity,
        ..Default::default()
    });

    // ~1.4 MiB, tens of thousands of tokens — far beyond the channel.
    let mut xml = String::from("<log><first>0</first>");
    for i in 0..40_000 {
        xml.push_str(&format!("<hit>{i}</hit>"));
    }
    xml.push_str("</log>");

    let mut q = service.open_stream_query("/log/first").unwrap();
    assert!(q.is_streamed(), "a child-only path streams");
    for chunk in xml.as_bytes().chunks(64 * 1024) {
        q.feed(chunk).unwrap();
    }
    let out = q.finish().unwrap();
    assert_eq!(out, "<first>0</first>");

    let stats = service.stats();
    assert_eq!(stats.ingest_channel_capacity, capacity as u64, "{stats}");
    assert!(
        stats.ingest_channel_peak > 0 && stats.ingest_channel_peak <= capacity as u64,
        "the channel gauge proves bounded buffering: {stats}"
    );

    // And the answer matches materialized evaluation exactly.
    let engine = Engine::new();
    assert_eq!(engine.query_xml(&xml, "/log/first").unwrap(), out);
}

/// Non-streamable queries take the buffering path through the same
/// front-end and still agree with materialized evaluation — including
/// on errors.
#[test]
fn stream_query_front_end_is_total() {
    let service = QueryService::new(ServiceConfig::default());

    let mut q = service.open_stream_query("count(//hit) * 2").unwrap();
    assert!(!q.is_streamed(), "aggregates buffer");
    q.feed(b"<log><hit/><hi").unwrap();
    q.feed(b"t/></log>").unwrap();
    assert_eq!(q.finish().unwrap(), "4");

    // Malformed input: the chunked error is the whole-document error.
    let whole = Engine::new()
        .query_xml("<a><b></a>", "count(//b)")
        .unwrap_err();
    let mut q = service.open_stream_query("count(//b)").unwrap();
    q.feed(b"<a><b><").unwrap();
    q.feed(b"/a>").unwrap();
    let chunked = q.finish().unwrap_err();
    assert_eq!(chunked.code, whole.code);
}
