//! The W3C "XML Query Use Cases" XMP suite (the canonical examples the
//! talk's audience knew by heart), run against the spec's bib.xml /
//! reviews.xml sample data. Queries adapted only where they use features
//! outside our documented subset.

use xqr::{DynamicContext, Engine};

const BIB: &str = r#"<bib>
    <book year="1994">
        <title>TCP/IP Illustrated</title>
        <author><last>Stevens</last><first>W.</first></author>
        <publisher>Addison-Wesley</publisher>
        <price>65.95</price>
    </book>
    <book year="1992">
        <title>Advanced Programming in the Unix environment</title>
        <author><last>Stevens</last><first>W.</first></author>
        <publisher>Addison-Wesley</publisher>
        <price>65.95</price>
    </book>
    <book year="2000">
        <title>Data on the Web</title>
        <author><last>Abiteboul</last><first>Serge</first></author>
        <author><last>Buneman</last><first>Peter</first></author>
        <author><last>Suciu</last><first>Dan</first></author>
        <publisher>Morgan Kaufmann Publishers</publisher>
        <price>39.95</price>
    </book>
    <book year="1999">
        <title>The Economics of Technology and Content for Digital TV</title>
        <editor><last>Gerbarg</last><first>Darcy</first><affiliation>CITI</affiliation></editor>
        <publisher>Kluwer Academic Publishers</publisher>
        <price>129.95</price>
    </book>
</bib>"#;

const REVIEWS: &str = r#"<reviews>
    <entry>
        <title>Data on the Web</title>
        <price>34.95</price>
        <review>A very good discussion of semi-structured database systems and XML.</review>
    </entry>
    <entry>
        <title>Advanced Programming in the Unix environment</title>
        <price>65.95</price>
        <review>A clear and detailed discussion of UNIX programming.</review>
    </entry>
    <entry>
        <title>TCP/IP Illustrated</title>
        <price>65.95</price>
        <review>One of the best books on TCP/IP.</review>
    </entry>
</reviews>"#;

fn engine() -> Engine {
    let engine = Engine::new();
    engine.load_document("bib.xml", BIB).unwrap();
    engine.load_document("reviews.xml", REVIEWS).unwrap();
    engine
}

fn run(q: &str) -> String {
    let e = engine();
    let prepared = e
        .compile(q)
        .unwrap_or_else(|err| panic!("compile: {err}\n{q}"));
    prepared
        .execute(&e, &DynamicContext::new())
        .unwrap_or_else(|err| panic!("run: {err}\n{q}"))
        .serialize_guarded()
        .unwrap()
}

#[test]
fn q1_books_by_publisher_after_year() {
    // XMP Q1: books published by Addison-Wesley after 1991.
    let out = run(r#"
        <bib>{
          for $b in doc("bib.xml")/bib/book
          where $b/publisher = "Addison-Wesley" and $b/@year > 1991
          return <book year="{$b/@year}">{$b/title}</book>
        }</bib>
    "#);
    assert_eq!(
        out,
        r#"<bib><book year="1994"><title>TCP/IP Illustrated</title></book><book year="1992"><title>Advanced Programming in the Unix environment</title></book></bib>"#
    );
}

#[test]
fn q2_flat_title_author_pairs() {
    // XMP Q2: (title, author) pairs.
    let out = run(r#"
        <results>{
          for $b in doc("bib.xml")/bib/book, $t in $b/title, $a in $b/author
          return <result>{$t}{$a}</result>
        }</results>
    "#);
    assert_eq!(out.matches("<result>").count(), 5); // 2×Stevens + 3 for Data on the Web
    assert!(out.contains("<last>Suciu</last>"));
}

#[test]
fn q3_title_with_all_authors() {
    // XMP Q3: each title with its authors grouped.
    let out = run(r#"
        <results>{
          for $b in doc("bib.xml")/bib/book
          return <result>{$b/title}{$b/author}</result>
        }</results>
    "#);
    assert_eq!(out.matches("<result>").count(), 4);
    // Data on the Web keeps 3 authors in one result.
    let data = out
        .split("<result>")
        .find(|s| s.contains("Data on the Web"))
        .unwrap();
    assert_eq!(data.matches("<author>").count(), 3);
}

#[test]
fn q4_author_with_all_titles() {
    // XMP Q4: invert the relationship — authors with their titles.
    let out = run(r#"
        <results>{
          for $last in distinct-values(doc("bib.xml")//author/last)
          order by $last
          return
            <result>
              <author>{$last}</author>
              {
                for $b in doc("bib.xml")/bib/book
                where $b/author/last = $last
                return $b/title
              }
            </result>
        }</results>
    "#);
    let stevens = out
        .split("<result>")
        .find(|s| s.contains("Stevens"))
        .unwrap();
    assert_eq!(stevens.matches("<title>").count(), 2);
}

#[test]
fn q5_join_with_reviews() {
    // XMP Q5: join bib and reviews on title.
    let out = run(r#"
        <books-with-prices>{
          for $b in doc("bib.xml")//book, $a in doc("reviews.xml")//entry
          where $b/title = $a/title
          return
            <book-with-prices>
              {$b/title}
              <price-review>{string($a/price)}</price-review>
              <price-bib>{string($b/price)}</price-bib>
            </book-with-prices>
        }</books-with-prices>
    "#);
    assert_eq!(out.matches("<book-with-prices>").count(), 3);
    assert!(out.contains("<price-review>34.95</price-review>"));
}

#[test]
fn q6_books_with_min_authors() {
    // XMP Q6: titles of books with more than one author — plus the count.
    let out = run(r#"
        for $b in doc("bib.xml")//book
        where count($b/author) > 0
        return
          <book>
            {$b/title}
            {for $a in $b/author[position() le 2] return $a}
            {if (count($b/author) > 2) then <et-al/> else ()}
          </book>
    "#);
    assert_eq!(out.matches("<book>").count(), 3);
    assert_eq!(out.matches("<et-al/>").count(), 1);
}

#[test]
fn q10_prices_by_title() {
    // XMP Q10: minimum price per title across both sources.
    let out = run(r#"
        <results>{
          let $doc := (doc("bib.xml")//price, doc("reviews.xml")//price)
          for $t in distinct-values(doc("reviews.xml")//title)
          let $p := (doc("bib.xml")//book[title = $t]/price,
                     doc("reviews.xml")//entry[title = $t]/price)
          order by $t
          return <minprice title="{$t}">{min(for $x in $p return number($x))}</minprice>
        }</results>
    "#);
    assert!(
        out.contains(r#"<minprice title="Data on the Web">34.95</minprice>"#),
        "{out}"
    );
    assert_eq!(out.matches("<minprice").count(), 3);
}

#[test]
fn q11_books_or_editors() {
    // XMP Q11: books have authors, monographs have editors.
    let out = run(r#"
        <bib>{
          for $b in doc("bib.xml")//book[editor]
          return <reference>{$b/title}{string($b/editor/affiliation)}</reference>
        }</bib>
    "#);
    assert_eq!(out.matches("<reference>").count(), 1);
    assert!(out.contains("CITI"));
}

#[test]
fn q12_same_author_pairs() {
    // XMP Q12: pairs of books with exactly the same author set (here:
    // the two Stevens books find each other).
    let out = run(r#"
        <bib>{
          for $book1 in doc("bib.xml")//book, $book2 in doc("bib.xml")//book
          let $aut1 := for $a in $book1/author order by $a/last, $a/first return string($a/last)
          let $aut2 := for $a in $book2/author order by $a/last, $a/first return string($a/first)
          where $book1 << $book2
            and count($book1/author) = count($book2/author)
            and count($book1/author) > 0
            and deep-equal($book1/author, $book2/author)
          return <book-pair>{$book1/title}{$book2/title}</book-pair>
        }</bib>
    "#);
    assert_eq!(out.matches("<book-pair>").count(), 1, "{out}");
    assert!(out.contains("TCP/IP Illustrated"));
    assert!(out.contains("Unix environment"));
}
